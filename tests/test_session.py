"""The session-oriented API: plan cache, external variables, cursors.

Covers the client layer of :mod:`repro.core.session`: plan-cache hit/miss
accounting and invalidation across ``load``/``drop``, external-variable
binding (declared and implicit, plus missing/extra binding errors),
cursor semantics (partial fetch, early close, iteration after close,
lazy serialization), resource-limit enforcement on the milestone-1
evaluator, and byte-equivalence of the session path with the old
one-shot facade on the full correctness suite.
"""

import pytest

from repro.errors import (
    BindingError,
    CursorClosedError,
    ResourceLimitExceeded,
    XQSyntaxError,
)
from repro.workloads.handmade import FIGURE2_XML
from repro.workloads.queries import CORRECTNESS_QUERIES
from repro.xmlkit.dom import Text
from repro.xq.parser import parse_program, parse_query

PARAM_QUERY = (
    "declare variable $who external; "
    "for $n in //name return "
    'if (some $t in $n/text() satisfies $t = $who) then $n else ()')


class TestProlog:
    def test_declared_externals_parsed(self):
        program = parse_program(PARAM_QUERY)
        assert program.externals == ("who",)
        assert program.required_variables() == frozenset({"who"})

    def test_multiple_declarations(self):
        program = parse_program(
            "declare variable $a external; "
            "declare variable $b external; //name")
        assert program.externals == ("a", "b")

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(XQSyntaxError):
            parse_program("declare variable $a external; "
                          "declare variable $a external; //name")

    def test_implicit_external_is_free_variable(self):
        program = parse_program(
            "for $n in //name return "
            "if (some $t in $n/text() satisfies $t = $who) "
            "then $n else ()")
        assert program.externals == ()
        assert program.required_variables() == frozenset({"who"})

    def test_parse_query_still_returns_bare_ast(self):
        ast = parse_query(PARAM_QUERY)
        assert ast == parse_program(PARAM_QUERY).body

    def test_programs_are_hashable_cache_keys(self):
        a = parse_program(PARAM_QUERY)
        b = parse_program(PARAM_QUERY)
        assert a == b and hash(a) == hash(b)


class TestPlanCache:
    def test_repeated_prepare_hits(self, fig2):
        session = fig2.session()
        first = session.prepare("fig2", "//name")
        second = session.prepare("fig2", "//name")
        assert not first.from_cache
        assert second.from_cache
        info = session.cache_info()
        assert info.hits == 1 and info.misses == 1 and info.size == 1

    def test_equivalent_text_shares_plan(self, fig2):
        """Textually different queries with equal core ASTs share a plan."""
        session = fig2.session()
        session.prepare("fig2", "//name")
        prepared = session.prepare("fig2", "  //name  (: same query :)")
        assert prepared.from_cache

    def test_profiles_cached_separately(self, fig2):
        session = fig2.session()
        session.prepare("fig2", "//name", profile="m4")
        prepared = session.prepare("fig2", "//name", profile="m2")
        assert not prepared.from_cache

    def test_load_invalidates(self, fig2):
        session = fig2.session()
        session.prepare("fig2", "//name")
        fig2.load("fig2", xml="<journal><name>Zoe</name></journal>")
        prepared = session.prepare("fig2", "//name")
        assert not prepared.from_cache
        assert prepared.query() == "<name>Zoe</name>"

    def test_drop_and_reload_invalidates(self, fig2):
        session = fig2.session()
        session.prepare("fig2", "//name")
        fig2.drop("fig2")
        fig2.load("fig2", xml=FIGURE2_XML)
        assert not session.prepare("fig2", "//name").from_cache

    def test_cache_shared_across_sessions_is_not(self, fig2):
        """Each session owns its cache (like a DBMS connection)."""
        first = fig2.session()
        second = fig2.session()
        first.prepare("fig2", "//name")
        assert not second.prepare("fig2", "//name").from_cache

    def test_capacity_evicts_lru(self, fig2):
        session = fig2.session(plan_cache_capacity=2)
        session.prepare("fig2", "//name")
        session.prepare("fig2", "//title")
        session.prepare("fig2", "//authors")  # evicts //name
        assert session.cache_info().size == 2
        assert not session.prepare("fig2", "//name").from_cache

    def test_query_reuses_plan(self, fig2):
        session = fig2.session()
        assert session.query("fig2", "//name") == \
            "<name>Ana</name><name>Bob</name>"
        session.query("fig2", "//name")
        assert session.cache_info().hits >= 1


class TestStaleEngineRegression:
    def test_reload_refreshes_results_on_every_profile(self, fig2):
        """``load`` over a loaded name replaces it and drops cached
        engines — previously only ``drop`` invalidated, so a cached
        engine (and the m1 DOM) could serve the old document."""
        for profile in ("m1", "m2", "m3", "m4"):
            assert "Ana" in fig2.query("fig2", "//name", profile=profile)
        fig2.load("fig2", xml="<journal><name>Zoe</name></journal>")
        for profile in ("m1", "m2", "m3", "m4"):
            assert fig2.query("fig2", "//name", profile=profile) == \
                "<name>Zoe</name>", profile

    def test_reload_updates_statistics(self, fig2):
        fig2.load("fig2", xml="<journal><name>Zoe</name></journal>")
        assert fig2.statistics("fig2").label_counts["name"] == 1

    def test_failed_reload_preserves_old_document(self, fig2):
        """A malformed replacement must not destroy the loaded document."""
        from repro.errors import XmlError

        with pytest.raises(XmlError):
            fig2.load("fig2", xml="<journal><oops")
        assert "fig2" in fig2.documents()
        assert fig2.query("fig2", "//name") == \
            "<name>Ana</name><name>Bob</name>"

    def test_held_prepared_query_sees_reload(self, fig2):
        """A PreparedQuery prepared before a reload re-prepares itself
        instead of serving results from the replaced document."""
        prepared = fig2.session().prepare("fig2", "//name")
        assert prepared.query() == "<name>Ana</name><name>Bob</name>"
        fig2.load("fig2", xml="<journal><name>Zoe</name></journal>")
        assert prepared.query() == "<name>Zoe</name>"

    def test_held_prepared_query_errors_after_drop(self, fig2):
        from repro.errors import CatalogError

        prepared = fig2.session().prepare("fig2", "//name")
        fig2.drop("fig2")
        with pytest.raises(CatalogError):
            prepared.execute()

    def test_catalog_version_bumps(self, fig2):
        before = fig2.catalog_version("fig2")
        fig2.load("fig2", xml=FIGURE2_XML)  # replace = drop + load
        after_reload = fig2.catalog_version("fig2")
        assert after_reload > before
        fig2.drop("fig2")
        assert fig2.catalog_version("fig2") > after_reload


class TestExternalVariables:
    @pytest.mark.parametrize("profile", ["m1", "m2", "m3", "m4",
                                         "engine-2", "engine-5"])
    def test_declared_external_on_every_engine(self, fig2, profile):
        session = fig2.session(profile=profile)
        prepared = session.prepare("fig2", PARAM_QUERY)
        assert prepared.query(bindings={"who": "Ana"}) == \
            "<name>Ana</name>"
        assert prepared.query(bindings={"who": "Bob"}) == \
            "<name>Bob</name>"
        assert prepared.query(bindings={"who": "Eve"}) == ""

    def test_implicit_binding_without_declaration(self, fig2):
        session = fig2.session()
        prepared = session.prepare(
            "fig2",
            "for $n in //name return "
            "if (some $t in $n/text() satisfies $t = $who) "
            "then $n else ()")
        assert prepared.query(bindings={"who": "Bob"}) == \
            "<name>Bob</name>"

    def test_text_node_binding_accepted(self, fig2):
        prepared = fig2.session().prepare("fig2", PARAM_QUERY)
        assert prepared.query(bindings={"who": Text("Ana")}) == \
            "<name>Ana</name>"

    def test_external_output_serializes_as_text(self, fig2):
        prepared = fig2.session().prepare(
            "fig2", "declare variable $w external; <echo>{ $w }</echo>")
        assert prepared.query(bindings={"w": "hello"}) == \
            "<echo>hello</echo>"

    def test_missing_binding_rejected(self, fig2):
        prepared = fig2.session().prepare("fig2", PARAM_QUERY)
        with pytest.raises(BindingError, match=r"\$who"):
            prepared.execute()

    def test_extra_binding_rejected(self, fig2):
        prepared = fig2.session().prepare("fig2", "//name")
        with pytest.raises(BindingError, match=r"\$ghost"):
            prepared.execute(bindings={"ghost": "boo"})

    def test_non_text_binding_rejected(self, fig2):
        prepared = fig2.session().prepare("fig2", PARAM_QUERY)
        with pytest.raises(BindingError, match="string or a text node"):
            prepared.execute(bindings={"who": 42})

    def test_var_eq_var_between_external_and_bound(self, loaded):
        """An external compared against a for-bound text variable runs as
        a residual predicate on the algebraic engines."""
        query = ("declare variable $y external; "
                 "for $x in //article return "
                 "if (some $t in $x/year/text() satisfies $t = $y) "
                 "then <m/> else ()")
        session = loaded.session()
        results = {}
        for profile in ("m1", "m2", "m4"):
            prepared = session.prepare("dblp", query, profile=profile)
            results[profile] = prepared.query(bindings={"y": "2000"})
        assert results["m1"] == results["m2"] == results["m4"]

    def test_step_from_external_text_is_empty(self, fig2):
        """Navigation from a text-valued parameter yields nothing on
        every engine (text nodes have no children)."""
        query = ("declare variable $w external; "
                 "for $c in $w/child::* return $c")
        session = fig2.session()
        for profile in ("m1", "m2", "m4"):
            prepared = session.prepare("fig2", query, profile=profile)
            assert prepared.query(bindings={"w": "x"}) == "", profile


class TestCursor:
    def test_partial_fetch(self, fig2):
        cursor = fig2.session().prepare("fig2", "//name").execute()
        first = cursor.fetch(1)
        assert [node.name for node in first] == ["name"]
        rest = cursor.fetchall()
        assert len(rest) == 1
        cursor.close()

    def test_fetch_past_end_returns_short_batch(self, fig2):
        cursor = fig2.session().prepare("fig2", "//name").execute()
        assert len(cursor.fetch(10)) == 2
        assert cursor.fetch(10) == []

    def test_fetch_zero_consumes_nothing(self, fig2):
        cursor = fig2.session().prepare("fig2", "//name").execute()
        assert cursor.fetch(0) == []
        assert len(cursor.fetchall()) == 2

    def test_iteration(self, fig2):
        with fig2.session().prepare("fig2", "//name").execute() as cursor:
            names = [node.name for node in cursor]
        assert names == ["name", "name"]

    def test_iteration_after_close_raises(self, fig2):
        cursor = fig2.session().prepare("fig2", "//name").execute()
        cursor.close()
        with pytest.raises(CursorClosedError):
            next(cursor)
        with pytest.raises(CursorClosedError):
            cursor.fetch(1)
        with pytest.raises(CursorClosedError):
            cursor.fetchall()
        with pytest.raises(CursorClosedError):
            cursor.serialize()

    def test_close_is_idempotent(self, fig2):
        cursor = fig2.session().prepare("fig2", "//name").execute()
        cursor.close()
        cursor.close()

    def test_early_close_after_partial_consumption(self, fig2):
        """Closing a half-read cursor shuts the pipeline down cleanly;
        a new execution of the same prepared query starts fresh."""
        prepared = fig2.session().prepare("fig2", "//name")
        cursor = prepared.execute()
        cursor.fetch(1)
        cursor.close()
        assert prepared.query() == "<name>Ana</name><name>Bob</name>"

    def test_serialize_streams_remaining(self, fig2):
        cursor = fig2.session().prepare("fig2", "//name").execute()
        cursor.fetch(1)
        assert cursor.serialize() == "<name>Bob</name>"

    def test_context_manager_closes(self, fig2):
        with fig2.session().prepare("fig2", "//name").execute() as cursor:
            cursor.fetch(1)
        with pytest.raises(CursorClosedError):
            next(cursor)

    @pytest.mark.parametrize("profile", ["m3", "m4"])
    def test_interleaved_cursors_are_independent(self, loaded, profile):
        """Two open cursors from one prepared query never share
        materialised plan state: interleaving their consumption yields
        the same results as running each alone."""
        query = CORRECTNESS_QUERIES["q10-strict-merge"]
        expected = loaded.query("dblp", query, profile=profile)
        prepared = loaded.session(profile=profile).prepare("dblp", query)
        first = prepared.execute()
        second = prepared.execute()
        from_first, from_second = [], []
        while True:
            batch_a = first.fetch(1)
            batch_b = second.fetch(1)
            from_first.extend(batch_a)
            from_second.extend(batch_b)
            if not batch_a and not batch_b:
                break
        from repro.xmlkit.serializer import serialize

        assert "".join(serialize(n) for n in from_first) == expected
        assert "".join(serialize(n) for n in from_second) == expected

    def test_streaming_is_lazy(self, fig2):
        """The cursor yields without materialising the full result: a
        huge nested cross-product query produces its first row fast."""
        query = ("for $a in //* return for $b in //* return "
                 "for $c in //* return <t/>")
        with fig2.session().prepare(
                "fig2", query, profile="m2").execute() as cursor:
            assert cursor.fetch(1)[0].name == "t"


class TestResourceLimits:
    def test_m1_time_limit_enforced(self, loaded):
        query = ("for $x in //author return for $y in //author return "
                 "for $z in //author return <t/>")
        with pytest.raises(ResourceLimitExceeded) as excinfo:
            loaded.query("dblp", query, profile="m1", time_limit=0.01)
        assert excinfo.value.kind == "time"

    def test_m1_memory_budget_enforced(self, loaded):
        with pytest.raises(ResourceLimitExceeded) as excinfo:
            loaded.query("dblp", "<out>{ //article }</out>", profile="m1",
                         memory_budget=1024)
        assert excinfo.value.kind == "memory"

    @pytest.mark.parametrize("profile", ["m1", "m2", "m4"])
    def test_all_evaluator_kinds_raise_on_deadline(self, loaded, profile):
        query = ("for $x in //author return for $y in //author return "
                 "for $z in //author return <t/>")
        with pytest.raises(ResourceLimitExceeded):
            loaded.query("dblp", query, profile=profile, time_limit=0.0)

    def test_session_default_limits_apply(self, loaded):
        session = loaded.session(profile="m2", time_limit=0.0)
        query = ("for $x in //author return for $y in //author return "
                 "<t/>")
        with pytest.raises(ResourceLimitExceeded):
            session.query("dblp", query)

    def test_per_execute_override_beats_session_default(self, fig2):
        session = fig2.session(time_limit=0.0)
        prepared = session.prepare("fig2", "//name")
        assert prepared.query(time_limit=None) == \
            "<name>Ana</name><name>Bob</name>"


class TestExplainReport:
    def test_str_matches_facade_text(self, fig2):
        report = fig2.session().explain("fig2", "//name")
        assert str(report) == fig2.explain("fig2", "//name")

    def test_structured_fields(self, fig2):
        session = fig2.session()
        report = session.explain("fig2", "//name")
        assert report.profile == "m4"
        assert report.evaluator == "algebraic"
        assert report.tpm is not None
        assert len(report.plans) == 1
        assert report.plans[0].vartuple
        assert report.estimated_cost > 0
        assert not report.cache_hit

    def test_cache_hit_reported(self, fig2):
        session = fig2.session()
        session.prepare("fig2", "//name")
        assert session.explain("fig2", "//name").cache_hit

    def test_non_algebraic_report(self, fig2):
        report = fig2.session().explain("fig2", "//name", profile="m2")
        assert report.tpm is None and report.plans == ()
        assert "navigational" in str(report)


class TestFacadeEquivalence:
    @pytest.mark.parametrize("profile", ["m2", "m4"])
    def test_session_matches_facade_on_workload(self, loaded, profile):
        session = loaded.session(profile=profile)
        for name, xq in CORRECTNESS_QUERIES.items():
            expected = loaded.query("dblp", xq, profile=profile)
            assert session.query("dblp", xq) == expected, name

    def test_execute_returns_same_nodes_as_facade(self, fig2):
        facade = [node.name for node in fig2.execute("fig2", "//name")]
        session = [node.name
                   for node in fig2.session().execute("fig2", "//name")]
        assert facade == session
