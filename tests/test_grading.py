"""Grading testbed tests: tester caps, submission fairness, scoring."""

import pytest

from repro.engine.profiles import ENGINE_PROFILES
from repro.grading.scoring import CourseRules, GradeBook, StudentRecord
from repro.grading.submission import SubmissionSystem
from repro.grading.tester import Tester, format_figure7
from repro.workloads.queries import EfficiencyQuery


@pytest.fixture
def tester(fig2):
    return Tester(fig2, "fig2", time_limit=1.0)


SMALL_SUITE = {
    "names": "//name",
    "cond": ("for $n in //name return "
             "if (some $t in $n/text() satisfies $t = \"Ana\") "
             "then $n else ()"),
}


class TestCorrectnessTesting:
    def test_correct_engine_passes(self, tester):
        results = tester.run_correctness("m4", SMALL_SUITE)
        assert all(result.passed for result in results)

    def test_wrong_engine_detected(self, tester, monkeypatch):
        # Sabotage: an "engine" that always answers the empty sequence.
        import repro.core.dbms as dbms_module

        original = dbms_module.XmlDbms.query

        def sabotaged(self, document, query, profile="m4", **kwargs):
            if getattr(profile, "name", profile) == "m4":
                return ""
            return original(self, document, query, profile=profile,
                            **kwargs)

        monkeypatch.setattr(dbms_module.XmlDbms, "query", sabotaged)
        results = tester.run_correctness("m4", SMALL_SUITE)
        assert not all(result.passed for result in results)
        assert any("expected" in result.detail for result in results)


class TestEfficiencyCaps:
    def test_ok_run_records_elapsed(self, tester):
        query = EfficiencyQuery("q", "//name", "")
        result = tester.run_efficiency("m4", query)
        assert result.status == "ok"
        assert result.assigned_seconds == result.elapsed_seconds

    def test_timeout_assigns_cap(self, fig2):
        tester = Tester(fig2, "fig2", time_limit=0.0)
        query = EfficiencyQuery("q", "//name", "")
        result = tester.run_efficiency("m4", query)
        assert result.status == "timeout"
        assert result.assigned_seconds == 0.0  # the cap itself

    def test_memory_assigns_double_cap(self, loaded):
        """Over-memory is assigned 2× the cap (Figure 7's '(4800)')."""
        tester = Tester(loaded, "dblp", time_limit=1.0,
                        memory_limit_bytes=1024)
        query = EfficiencyQuery(
            "q", ("for $x in //author return for $y in //author "
                  "return <t/>"), "")
        result = tester.run_efficiency("engine-5", query)
        assert result.status == "memory"
        assert result.assigned_seconds == 2.0

    def test_figure7_rows_and_totals(self, tester):
        queries = [EfficiencyQuery("t1", "//name", ""),
                   EfficiencyQuery("t2", "//title", "")]
        rows = tester.run_figure7(profiles=["m4", "m3"], queries=queries)
        assert [row.engine for row in rows] == ["m4", "m3"]
        for row in rows:
            assert row.total_seconds == pytest.approx(
                sum(result.assigned_seconds for result in row.results))

    def test_format_figure7(self, tester):
        queries = [EfficiencyQuery("t1", "//name", "")]
        rows = tester.run_figure7(profiles=["m4"], queries=queries)
        table = format_figure7(rows)
        assert "Engine" in table and "Total" in table and "m4" in table


class TestSubmissionSystem:
    def make_system(self, fig2):
        tester = Tester(fig2, "fig2", time_limit=1.0)
        return SubmissionSystem(tester, SMALL_SUITE)

    def test_round_robin_fairness(self, fig2):
        system = self.make_system(fig2)
        # Team A floods the queue; team B submits once.
        for __ in range(3):
            system.submit("team-a", ENGINE_PROFILES["m4"])
        system.submit("team-b", ENGINE_PROFILES["m3"])
        order = [system.next_submission().team for __ in range(4)]
        assert order == ["team-a", "team-b", "team-a", "team-a"]

    def test_process_all_tests_everything(self, fig2):
        system = self.make_system(fig2)
        system.submit("a", ENGINE_PROFILES["m4"])
        system.submit("b", ENGINE_PROFILES["m2"])
        done = system.process_all()
        assert len(done) == 2
        assert all(submission.tested for submission in done)
        assert system.pending_count() == 0

    def test_passing_submission_gets_efficiency_results(self, fig2):
        system = self.make_system(fig2)
        system.submit("a", ENGINE_PROFILES["m4"])
        (submission,) = system.process_all()
        assert submission.passed_correctness
        assert len(submission.efficiency) == 5

    def test_report_mentions_timing(self, fig2):
        system = self.make_system(fig2)
        system.submit("a", ENGINE_PROFILES["m4"])
        (submission,) = system.process_all()
        report = system.render_report(submission)
        assert "CORRECTNESS: passed" in report
        assert "total:" in report

    def test_empty_pool_returns_none(self, fig2):
        system = self.make_system(fig2)
        assert system.process_one() is None


class TestScoring:
    def student(self, name, exam=80, delays=(0, 0, 0, 0), seconds=10.0,
                team_size=2):
        return StudentRecord(name=name, team=name, team_size=team_size,
                             exam_points=exam,
                             milestone_delays=list(delays),
                             engine_total_seconds=seconds)

    def test_early_bird_points(self):
        book = GradeBook()
        record = self.student("a")
        assert book.milestone_points(record) == 8  # 4 × 2

    def test_lateness_penalty_grows(self):
        book = GradeBook()
        late1 = book.milestone_points(self.student("a",
                                                   delays=(1, 0, 0, 0)))
        late3 = book.milestone_points(self.student("b",
                                                   delays=(3, 0, 0, 0)))
        assert late3 < late1 < 6

    def test_unsubmitted_milestone_blocks_exam(self):
        book = GradeBook()
        record = self.student("a", delays=(0, 0, 0, None))
        assert not book.admitted_to_exam(record)
        assert book.total_points(record) == 0

    def test_exam_pass_mark(self):
        book = GradeBook()
        assert not book.passed_exam(self.student("a", exam=49))
        assert book.passed_exam(self.student("a", exam=50))

    def test_small_team_bonus(self):
        book = GradeBook()
        small = self.student("a", team_size=2)
        big = self.student("b", team_size=4)
        assert book.team_points(small) == 2
        assert book.team_points(big) == 0

    def test_scalability_bonus_top_tiers(self):
        book = GradeBook()
        for index in range(20):
            book.add(self.student(f"s{index}", seconds=float(index + 1)))
        book.apply_scalability_bonus()
        by_name = {record.name: record for record in book.records}
        assert by_name["s0"].bonus_points == 8    # top 10%
        assert by_name["s3"].bonus_points == 4    # top 25%
        assert by_name["s10"].bonus_points == 0

    def test_quarter_of_cohort_exceeds_100(self):
        """The paper: '25% of the students that successfully passed the
        exam got more than 100 points in total.'"""
        book = GradeBook()
        # Base total 87 + 8 (milestones) + 2 (small team) = 97: only the
        # scalability bonus tiers (top 10% get +8, top 25% get +4) cross
        # the 100-point line — exactly a quarter of the cohort.
        for index in range(20):
            book.add(self.student(f"s{index}", exam=87,
                                  seconds=float(index + 1)))
        summary = book.summary()
        assert summary["passed"] == 20
        assert summary["over_100_fraction"] == pytest.approx(0.25)

    def test_custom_rules(self):
        rules = CourseRules(early_bird_points=5)
        book = GradeBook(rules)
        assert book.milestone_points(self.student("a")) == 20
