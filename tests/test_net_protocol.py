"""Protocol robustness: the frame codec under friendly and hostile input.

Three layers of assurance for :mod:`repro.net.protocol`:

* a hypothesis round-trip property — any sequence of messages encoded
  and fed to a :class:`~repro.net.protocol.FrameDecoder` in arbitrary
  chunkings (TCP may split or coalesce frames anywhere) decodes to the
  exact same sequence;
* fuzz tests — malformed frames, truncated streams and hostile length
  prefixes must raise :class:`~repro.errors.ProtocolError`, never
  anything else and never an infinite loop;
* the error taxonomy on the wire — every library exception crosses the
  encode/decode boundary as the same class (or its nearest wire-visible
  ancestor), with :class:`~repro.errors.ResourceLimitExceeded` keeping
  its structured fields.
"""

import json
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    AdmissionError,
    CatalogError,
    ProtocolError,
    ReproError,
    ResourceLimitExceeded,
    ServerError,
    XQSyntaxError,
)
from repro.net.protocol import (
    MAX_FRAME,
    FrameDecoder,
    MsgKind,
    WIRE_ERRORS,
    decode_body,
    decode_error,
    encode_error,
    encode_frame,
)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(-2**31, 2**31),
    st.text(max_size=40))

_payloads = st.dictionaries(
    keys=st.text(min_size=1, max_size=12),
    values=st.one_of(_scalars, st.lists(_scalars, max_size=5)),
    max_size=6)

_messages = st.lists(
    st.tuples(st.sampled_from(list(MsgKind)), _payloads),
    min_size=1, max_size=8)


def _chunked(blob: bytes, cuts: list[int]) -> list[bytes]:
    """Split ``blob`` at the (sorted, deduplicated) cut offsets."""
    offsets = sorted({min(cut, len(blob)) for cut in cuts})
    pieces, start = [], 0
    for offset in offsets:
        pieces.append(blob[start:offset])
        start = offset
    pieces.append(blob[start:])
    return [piece for piece in pieces if piece]


# ---------------------------------------------------------------------------
# the round-trip property
# ---------------------------------------------------------------------------


class TestRoundTrip:
    @given(messages=_messages, data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_any_chunking_reassembles_the_message_sequence(
            self, messages, data):
        blob = b"".join(encode_frame(kind, payload)
                        for kind, payload in messages)
        cuts = data.draw(st.lists(
            st.integers(0, len(blob)), max_size=16))
        decoder = FrameDecoder()
        decoded = []
        for piece in _chunked(blob, cuts):
            decoder.feed(piece)
            decoded.extend(decoder.frames())
        assert decoded == messages
        assert decoder.buffered == 0

    @given(kind=st.sampled_from(list(MsgKind)), payload=_payloads)
    @settings(max_examples=100, deadline=None)
    def test_single_frame_identity(self, kind, payload):
        frame = encode_frame(kind, payload)
        (length,) = struct.unpack_from("!I", frame)
        assert length == len(frame) - 4
        assert decode_body(frame[4:]) == (kind, payload)

    def test_unicode_payloads_survive(self):
        payload = {"text": "héllo — ünïcode ☃", "n": 3}
        decoder = FrameDecoder()
        decoder.feed(encode_frame(MsgKind.PAGE, payload))
        assert decoder.next_frame() == (MsgKind.PAGE, payload)


# ---------------------------------------------------------------------------
# fuzz: malformed frames, truncated streams, hostile lengths
# ---------------------------------------------------------------------------


class TestMalformedInput:
    def test_zero_length_frame_is_rejected(self):
        decoder = FrameDecoder()
        decoder.feed(struct.pack("!I", 0))
        with pytest.raises(ProtocolError):
            decoder.next_frame()

    def test_oversized_length_prefix_is_rejected_before_buffering(self):
        """A hostile length prefix fails immediately — the decoder must
        not wait for (or try to allocate) 4 GiB."""
        decoder = FrameDecoder()
        decoder.feed(struct.pack("!I", 0xFFFFFFFF))
        with pytest.raises(ProtocolError):
            decoder.next_frame()

    def test_length_just_over_the_limit_is_rejected(self):
        decoder = FrameDecoder(max_frame=1024)
        decoder.feed(struct.pack("!I", 1025))
        with pytest.raises(ProtocolError):
            decoder.next_frame()
        decoder = FrameDecoder(max_frame=1024)
        decoder.feed(struct.pack("!I", 1024) + b"\x01" + b"x" * 1023)
        with pytest.raises(ProtocolError):
            # length fits, but the body is garbage JSON
            decoder.next_frame()

    def test_unknown_kind_byte_is_rejected(self):
        body = bytes([200]) + b"{}"
        decoder = FrameDecoder()
        decoder.feed(struct.pack("!I", len(body)) + body)
        with pytest.raises(ProtocolError):
            decoder.next_frame()

    def test_non_json_payload_is_rejected(self):
        body = bytes([MsgKind.HELLO]) + b"\xff\xfe not json"
        with pytest.raises(ProtocolError):
            decode_body(struct.pack("!I", len(body))[:0] + body)

    def test_non_object_payload_is_rejected(self):
        for text in (b"[1,2]", b'"str"', b"42", b"null"):
            body = bytes([MsgKind.STATS]) + text
            with pytest.raises(ProtocolError):
                decode_body(body)

    def test_empty_body_is_rejected(self):
        with pytest.raises(ProtocolError):
            decode_body(b"")

    @given(garbage=st.binary(min_size=1, max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_garbage_never_raises_anything_but_protocol_error(
            self, garbage):
        """Arbitrary bytes either stall (incomplete), decode (lucky) or
        raise ProtocolError — never KeyError/UnicodeDecodeError/…"""
        decoder = FrameDecoder(max_frame=4096)
        decoder.feed(garbage)
        try:
            for __ in range(80):
                if decoder.next_frame() is None:
                    break
        except ProtocolError:
            pass

    def test_truncated_stream_stalls_without_error(self):
        """An honest-but-incomplete frame is not a violation: the
        decoder just waits for the rest."""
        frame = encode_frame(MsgKind.EXECUTE, {"document": "dblp"})
        decoder = FrameDecoder()
        decoder.feed(frame[:7])
        assert decoder.next_frame() is None
        assert decoder.buffered == 7
        decoder.feed(frame[7:])
        assert decoder.next_frame() == (MsgKind.EXECUTE,
                                        {"document": "dblp"})

    def test_default_frame_limit_is_sane(self):
        assert MAX_FRAME == 16 * 1024 * 1024


# ---------------------------------------------------------------------------
# the error taxonomy across the wire
# ---------------------------------------------------------------------------


class TestErrorFrames:
    @pytest.mark.parametrize("cls", sorted(WIRE_ERRORS.values(),
                                           key=lambda c: c.__name__),
                             ids=lambda c: c.__name__)
    def test_every_wire_error_round_trips_as_itself(self, cls):
        if cls is ResourceLimitExceeded:
            original = cls("time", 1.5, 2.5)
        else:
            original = cls("something went wrong")
        rebuilt = decode_error(encode_error(original))
        assert type(rebuilt) is cls
        assert str(original) in str(rebuilt) or str(rebuilt)

    def test_resource_limit_keeps_structured_fields(self):
        original = ResourceLimitExceeded("memory", 1024.0, 4096.0)
        payload = encode_error(original)
        assert payload["error"] == "ResourceLimitExceeded"
        assert payload["kind"] == "memory"
        rebuilt = decode_error(payload)
        assert isinstance(rebuilt, ResourceLimitExceeded)
        assert rebuilt.kind == "memory"
        assert rebuilt.limit == 1024.0
        assert rebuilt.used == 4096.0

    def test_unlisted_subclass_travels_as_nearest_ancestor(self):
        class ExoticCatalogProblem(CatalogError):
            pass

        rebuilt = decode_error(encode_error(
            ExoticCatalogProblem("no such document")))
        assert type(rebuilt) is CatalogError
        assert "no such document" in str(rebuilt)

    def test_non_library_exception_travels_as_server_error(self):
        rebuilt = decode_error(encode_error(KeyError("cursor")))
        assert type(rebuilt) is ServerError
        assert "KeyError" in str(rebuilt)

    def test_unknown_error_name_decodes_as_server_error(self):
        rebuilt = decode_error({"error": "FutureError2099",
                                "message": "from the future"})
        assert type(rebuilt) is ServerError
        assert "from the future" in str(rebuilt)

    def test_mangled_resource_limit_payload_degrades_gracefully(self):
        rebuilt = decode_error({"error": "ResourceLimitExceeded",
                                "message": "half a frame"})
        assert isinstance(rebuilt, ReproError)

    def test_admission_and_syntax_errors_are_distinguishable(self):
        admission = decode_error(encode_error(AdmissionError("full")))
        syntax = decode_error(encode_error(XQSyntaxError("bad query")))
        assert isinstance(admission, AdmissionError)
        assert isinstance(syntax, XQSyntaxError)
        assert not isinstance(syntax, AdmissionError)

    def test_error_payloads_are_json_serializable(self):
        payload = encode_error(ResourceLimitExceeded("time", 0.5, 0.9))
        assert json.loads(json.dumps(payload)) == payload
