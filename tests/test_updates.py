"""Update subsystem: semantics, differential oracle, invalidation.

The central instrument is differential testing: every scenario applies
the same updating statement(s) to a stored document (through
``XmlDbms.update``) and to the in-memory DOM (through
``repro.updates.memory.apply_to_dom``), then compares serialized
results.  A hypothesis property additionally round-trips edited
documents through serialize → reparse → reload.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dbms import XmlDbms
from repro.errors import UpdateError
from repro.updates.memory import apply_to_dom
from repro.workloads.handmade import FIGURE2_XML
from repro.xasr.document import StoredDocument
from repro.xmlkit.parser import parse as parse_document
from repro.xmlkit.serializer import serialize
from repro.xq.parser import parse_program

JOURNAL_XML = (
    "<journal><title>DB</title>"
    "<article><author>Ann</author><cite>x</cite></article>"
    "<article><author>Bob</author></article>"
    "<editor>Eve</editor></journal>"
)


def stored_xml(dbms: XmlDbms, name: str) -> str:
    """Serialize the stored document by full reconstruction."""
    return serialize(StoredDocument(dbms.db, name).to_document())


def check_differential(tmp_path, xml: str, statements: list[str],
                       bindings: dict | None = None) -> XmlDbms:
    """Apply statements to storage and DOM; both must agree after each."""
    dbms = XmlDbms(str(tmp_path / "diff.db"))
    dbms.load("doc", xml=xml)
    dom = parse_document(xml)
    for statement in statements:
        program = parse_program(statement)
        dbms.update("doc", statement, bindings=bindings)
        apply_to_dom(dom, program.body, bindings=bindings)
        assert stored_xml(dbms, "doc") == serialize(dom), statement
    return dbms


class TestUpdateKinds:
    def test_insert_into(self, tmp_path):
        dbms = check_differential(tmp_path, JOURNAL_XML, [
            "insert node <article><author>Cyd</author></article> "
            "into /journal",
        ])
        assert len(dbms.execute("doc", "//article")) == 3
        dbms.close()

    def test_insert_positions(self, tmp_path):
        check_differential(tmp_path, JOURNAL_XML, [
            "insert node <front/> as first into /journal",
            "insert node <back/> as last into /journal",
            "insert node <pre/> before /journal/title",
            "insert node <post/> after /journal/editor",
        ]).close()

    def test_insert_text_content(self, tmp_path):
        check_differential(tmp_path, JOURNAL_XML, [
            'insert node "extra" into /journal/editor',
        ]).close()

    def test_delete_many(self, tmp_path):
        dbms = check_differential(tmp_path, JOURNAL_XML, [
            "delete nodes //article",
        ])
        assert dbms.execute("doc", "//article") == []
        assert dbms.execute("doc", "//author") == []
        dbms.close()

    def test_delete_none_is_noop(self, tmp_path):
        dbms = check_differential(tmp_path, JOURNAL_XML, [
            "delete nodes //no-such-label",
        ])
        assert dbms.statistics("doc").total_nodes > 0
        dbms.close()

    def test_replace_text_value(self, tmp_path):
        dbms = check_differential(tmp_path, JOURNAL_XML, [
            'replace value of node /journal/title/text() with "Databases"',
        ])
        assert dbms.query("doc", "/journal/title") \
            == "<title>Databases</title>"
        dbms.close()

    def test_replace_element_value(self, tmp_path):
        check_differential(tmp_path, JOURNAL_XML, [
            'replace value of node /journal/editor with "Mallory"',
        ]).close()

    def test_replace_on_empty_element_grows_text(self, tmp_path):
        check_differential(
            tmp_path, "<journal><title/></journal>",
            ['replace value of node /journal/title with "T"']).close()

    def test_replace_with_empty_deletes_text(self, tmp_path):
        dbms = check_differential(tmp_path, JOURNAL_XML, [
            'replace value of node /journal/editor with ""',
        ])
        assert dbms.query("doc", "/journal/editor") == "<editor/>"
        dbms.close()

    def test_rename(self, tmp_path):
        dbms = check_differential(tmp_path, JOURNAL_XML, [
            "rename node /journal/editor as chief-editor",
        ])
        # The label index must follow the rename.
        assert dbms.execute("doc", "//editor") == []
        assert len(dbms.execute("doc", "//chief-editor")) == 1
        dbms.close()

    def test_update_list_statement(self, tmp_path):
        check_differential(tmp_path, JOURNAL_XML, [
            'delete node /journal/editor, '
            'insert node <editor>Max</editor> into /journal, '
            'rename node /journal/title as name',
        ]).close()

    def test_sibling_inserts_land_in_statement_order(self, tmp_path):
        dbms = check_differential(tmp_path, JOURNAL_XML, [
            'insert node <a1/> after /journal/title, '
            'insert node <a2/> after /journal/title, '
            'insert node <b1/> as first into /journal',
        ])
        labels = [node.name for node
                  in dbms.execute("doc", "/journal/*")]
        assert labels[:2] == ["b1", "title"]
        assert labels[2:4] == ["a1", "a2"]
        dbms.close()

    def test_figure2_document(self, tmp_path):
        check_differential(tmp_path, FIGURE2_XML, [
            "insert node <note>checked</note> into /journal",
            "delete node /journal/title",
        ]).close()


class TestBindings:
    def test_bound_content_value_and_name(self, tmp_path):
        statements = [
            ("declare variable $who external; "
             "insert node <contact>{ $who }</contact> "
             "into /journal/editor", {"who": "Cyd"}),
            ("declare variable $v external; "
             "replace value of node /journal/title/text() with $v",
             {"v": "New Title"}),
            ("rename node /journal/title as $n", {"n": "heading"}),
        ]
        dbms = XmlDbms(str(tmp_path / "b.db"))
        dbms.load("doc", xml=JOURNAL_XML)
        dom = parse_document(JOURNAL_XML)
        for statement, bindings in statements:
            dbms.update("doc", statement, bindings=bindings)
            apply_to_dom(dom, parse_program(statement).body,
                         bindings=bindings)
            assert stored_xml(dbms, "doc") == serialize(dom)
        dbms.close()

    def test_missing_binding_raises(self, tmp_path):
        with XmlDbms(str(tmp_path / "b.db")) as dbms:
            dbms.load("doc", xml=JOURNAL_XML)
            with pytest.raises(UpdateError, match=r"\$v"):
                dbms.update("doc", "replace value of node "
                            "/journal/title/text() with $v")

    def test_unexpected_binding_raises(self, tmp_path):
        with XmlDbms(str(tmp_path / "b.db")) as dbms:
            dbms.load("doc", xml=JOURNAL_XML)
            with pytest.raises(UpdateError, match="unexpected"):
                dbms.update("doc", "delete node /journal/editor",
                            bindings={"spurious": "x"})

    def test_binding_in_target_predicate(self, tmp_path):
        with XmlDbms(str(tmp_path / "b.db")) as dbms:
            dbms.load("doc", xml=JOURNAL_XML)
            dbms.update(
                "doc",
                "delete node "
                "for $a in /journal/article return "
                "if (some $t in $a/author/text() satisfies $t = $who) "
                "then $a",
                bindings={"who": "Bob"})
            authors = dbms.query("doc", "//author")
            assert "Ann" in authors and "Bob" not in authors


class TestValidation:
    @pytest.fixture
    def dbms(self, tmp_path):
        with XmlDbms(str(tmp_path / "v.db")) as dbms:
            dbms.load("doc", xml=JOURNAL_XML)
            yield dbms

    def test_conflicting_replaces_raise(self, dbms):
        with pytest.raises(UpdateError, match="conflict"):
            dbms.update("doc",
                        'replace value of node /journal/title/text() '
                        'with "A", '
                        'replace value of node /journal/title/text() '
                        'with "B"')

    def test_conflicting_replaces_on_empty_element_raise(self, tmp_path):
        # Regression: empty-element replaces desugar to inserts, which
        # the PUL-level point-conflict check never sees.
        with XmlDbms(str(tmp_path / "v2.db")) as dbms:
            dbms.load("doc", xml="<journal><title/></journal>")
            with pytest.raises(UpdateError, match="conflict"):
                dbms.update("doc",
                            'replace value of node /journal/title '
                            'with "A", '
                            'replace value of node /journal/title '
                            'with "B"')
            dom = parse_document("<journal><title/></journal>")
            program = parse_program(
                'replace value of node /journal/title with "A", '
                'replace value of node /journal/title with "B"')
            with pytest.raises(UpdateError, match="conflict"):
                apply_to_dom(dom, program.body)

    def test_conflicting_empty_and_nonempty_replace_raise(self, dbms):
        # Regression: "" desugars to a delete; the "x" must not be
        # silently dropped by delete-wins — it is a documented conflict.
        with pytest.raises(UpdateError, match="conflict"):
            dbms.update("doc",
                        'replace value of node /journal/title/text() '
                        'with "", '
                        'replace value of node /journal/title/text() '
                        'with "x"')

    def test_equal_replaces_dedupe(self, dbms):
        result = dbms.update(
            "doc",
            'replace value of node /journal/title/text() with "A", '
            'replace value of node /journal/title/text() with "A"')
        assert result.values_replaced == 1

    def test_delete_wins_over_rename(self, dbms):
        result = dbms.update(
            "doc",
            "rename node /journal/editor as gone, "
            "delete node /journal/editor")
        assert result.nodes_renamed == 0
        assert result.nodes_deleted == 2  # editor + its text

    def test_nested_deletes_collapse(self, dbms):
        result = dbms.update(
            "doc", "delete nodes //author, delete nodes //article")
        # Articles subsume their authors: the two article subtrees hold
        # 5 + 3 nodes; the nested author deletes add nothing.
        assert result.nodes_deleted == 8
        assert dbms.execute("doc", "//author") == []

    def test_insert_into_multiple_targets_raises(self, dbms):
        with pytest.raises(UpdateError, match="exactly one"):
            dbms.update("doc", "insert node <x/> into //article")

    def test_insert_into_text_raises(self, dbms):
        with pytest.raises(UpdateError, match="element"):
            dbms.update("doc",
                        "insert node <x/> into /journal/title/text()")

    def test_sibling_of_root_raises(self, dbms):
        with pytest.raises(UpdateError, match="root"):
            dbms.update("doc", "insert node <x/> before /journal")

    def test_delete_root_raises(self, dbms):
        # The virtual root is not addressable; deleting the root
        # *element* is legal and leaves an empty document.
        result = dbms.update("doc", "delete node /journal")
        assert result.nodes_deleted > 0
        assert dbms.execute("doc", "//title") == []

    def test_rename_text_raises(self, dbms):
        with pytest.raises(UpdateError, match="element"):
            dbms.update("doc",
                        "rename node /journal/title/text() as x")

    def test_bad_name_raises(self, dbms):
        with pytest.raises(UpdateError, match="valid element name"):
            dbms.update("doc",
                        'rename node /journal/title as "not a name"')

    def test_replace_mixed_content_raises(self, dbms):
        with pytest.raises(UpdateError, match="single text node"):
            dbms.update("doc",
                        'replace value of node /journal with "flat"')

    def test_query_api_rejects_updates(self, dbms):
        session = dbms.session()
        with pytest.raises(UpdateError, match="prepared"):
            session.prepare("doc", "delete node //editor")
        with pytest.raises(UpdateError):
            dbms.update("doc", "//editor")  # query is not an update


class TestInvalidation:
    def test_plan_cache_and_prepared_queries_see_updates(self, tmp_path):
        with XmlDbms(str(tmp_path / "i.db")) as dbms:
            session = dbms.session()
            dbms.load("doc", xml=JOURNAL_XML)
            prepared = session.prepare("doc", "//article")
            assert len(prepared.query()) > 0
            before = dbms.catalog_version("doc")
            result = session.execute(
                "doc", "insert node <article><author>Zed</author>"
                "</article> into /journal")
            assert result.stats_version == before + 1
            # Both the held prepared query and fresh executions reflect
            # the update (stats-version key invalidates cached plans).
            assert len(session.execute("doc", "//article")) == 3
            with prepared.execute() as cursor:
                assert len(cursor.fetchall()) == 3

    def test_statistics_match_reload(self, tmp_path):
        """Incrementally maintained statistics equal load-from-scratch."""
        with XmlDbms(str(tmp_path / "s.db")) as dbms:
            dbms.load("doc", xml=JOURNAL_XML)
            dbms.update("doc", "insert node <article><author>Cyd"
                        "</author><cite>y</cite></article> into /journal")
            dbms.update("doc", "delete node /journal/editor")
            dbms.update("doc", "rename node /journal/title as name")
            edited = stored_xml(dbms, "doc")
            maintained = dbms.statistics("doc")
            dbms.load("fresh", xml=edited)
            reloaded = dbms.statistics("fresh")
            assert maintained.total_nodes == reloaded.total_nodes
            assert maintained.element_count == reloaded.element_count
            assert maintained.text_count == reloaded.text_count
            assert maintained.label_counts == reloaded.label_counts
            assert maintained.depth_sum == reloaded.depth_sum
            assert maintained.max_in == reloaded.max_in
            # max_depth only ratchets up; never below the true depth.
            assert maintained.max_depth >= reloaded.max_depth

    def test_update_durable_across_reopen(self, tmp_path):
        path = str(tmp_path / "d.db")
        with XmlDbms(path) as dbms:
            dbms.load("doc", xml=JOURNAL_XML)
            dbms.update("doc", 'rename node /journal/title as name')
        with XmlDbms(path) as dbms:
            assert len(dbms.execute("doc", "//name")) == 1
            # And further updates still work after reopening.
            dbms.update("doc", "delete node //name")
            assert dbms.execute("doc", "//name") == []


class TestOverflowValues:
    def test_replace_with_overflow_value(self, tmp_path):
        big = "long text " * 500  # far beyond VALUE_INLINE_MAX
        with XmlDbms(str(tmp_path / "o.db")) as dbms:
            dbms.load("doc", xml=JOURNAL_XML)
            dbms.update("doc", "replace value of node "
                        "/journal/title/text() with $v",
                        bindings={"v": big})
            (title,) = dbms.execute("doc", "/journal/title")
            assert title.string_value() == big
            # Replace again (frees the old chain) and then delete.
            dbms.update("doc", 'replace value of node '
                        '/journal/title/text() with "small"')
            dbms.update("doc", "delete node /journal/title")
            assert dbms.execute("doc", "//title") == []


    def test_rename_with_overflow_labels(self, tmp_path):
        """Element labels can be overflow-stored too: renaming away
        from one must clean stats and free the chain; renaming *to* a
        long name must spill instead of violating the inline limit."""
        long_a, long_b = "a" * 1500, "b" * 1500
        with XmlDbms(str(tmp_path / "o3.db")) as dbms:
            dbms.load("doc", xml=f"<r><{long_a}>t</{long_a}></r>")
            assert dbms.statistics("doc").label_counts[long_a] == 1
            dbms.update("doc", f"rename node /r/{long_a} as short")
            counts = dbms.statistics("doc").label_counts
            assert long_a not in counts and counts["short"] == 1
            dbms.update("doc", f"rename node /r/short as {long_b}")
            assert len(dbms.execute("doc", f"//{long_b}")) == 1
            assert dbms.statistics("doc").label_counts \
                == {"r": 1, long_b: 1}

    def test_structural_rekey_of_overflow_record(self, tmp_path):
        """Suffix rekeying must carry overflow values' index entries
        (rebuilt from the chain's first page only) without copying or
        corrupting the chains."""
        big = "overflow payload " * 200
        with XmlDbms(str(tmp_path / "o2.db")) as dbms:
            dbms.load("doc", xml=JOURNAL_XML)
            dbms.update("doc", "replace value of node "
                        "/journal/title/text() with $v",
                        bindings={"v": big})
            # Insert before the title: the overflow text record sits in
            # the shifted suffix.
            dbms.update("doc",
                        "insert node <front/> before /journal/title")
            (title,) = dbms.execute("doc", "/journal/title")
            assert title.string_value() == big
            # The label index still finds the node by its full value.
            found = dbms.update(
                "doc", "delete node "
                "for $t in /journal/title/text() return "
                "if ($t = $v) then $t",
                bindings={"v": big})
            assert found.nodes_deleted == 1
            assert dbms.query("doc", "/journal/title") == "<title/>"


class TestServerUpdates:
    def test_updates_serialize_with_reads(self, tmp_path):
        from repro.core.server import QueryServer

        with XmlDbms(str(tmp_path / "srv.db")) as dbms:
            dbms.load("doc", xml=JOURNAL_XML)
            with QueryServer(dbms, workers=4) as server:
                futures = [server.submit("doc", "//article")
                           for __ in range(8)]
                update = server.submit(
                    "doc", "insert node <article><author>Srv</author>"
                    "</article> into /journal")
                more = [server.submit("doc", "//article")
                        for __ in range(8)]
                result = update.result()
                assert result.nodes_inserted == 3
                for future in futures:
                    assert len(future.result()) in (2, 3)
                for future in more:
                    assert len(future.result()) in (2, 3)
            # After the pool drains the update is visible.
            assert len(dbms.execute("doc", "//article")) == 3

    def test_serialize_update_submission_rejected(self, tmp_path):
        from repro.core.server import QueryServer

        with XmlDbms(str(tmp_path / "srv2.db")) as dbms:
            dbms.load("doc", xml=JOURNAL_XML)
            with QueryServer(dbms, workers=1) as server:
                future = server.submit("doc", "delete node //editor",
                                       serialize=True)
                with pytest.raises(UpdateError):
                    future.result()


# -- hypothesis: random edit scripts ---------------------------------------

_LABELS = ["a", "b", "c"]


@st.composite
def _documents(draw):
    """Small random documents with distinct enough structure."""
    def element(depth):
        label = draw(st.sampled_from(_LABELS))
        children = []
        if depth < 3:
            for __ in range(draw(st.integers(0, 2))):
                children.append(element(depth + 1))
        if not children and draw(st.booleans()):
            text = draw(st.sampled_from(["x", "yy", "z z"]))
            return f"<{label}>{text}</{label}>"
        return f"<{label}>{''.join(children)}</{label}>"

    return f"<root>{element(0)}{element(0)}</root>"


@st.composite
def _edits(draw):
    kind = draw(st.sampled_from(["insert", "delete", "rename"]))
    label = draw(st.sampled_from(_LABELS))
    if kind == "insert":
        position = draw(st.sampled_from(
            ["into", "as first into", "as last into"]))
        payload = draw(st.sampled_from(
            ["<n/>", "<n>t</n>", "<n><m>deep</m></n>"]))
        return f"insert node {payload} {position} /root"
    if kind == "delete":
        return f"delete nodes //{label}"
    return f"rename node /root as r{draw(st.integers(0, 9))}"


@settings(max_examples=30, deadline=None)
@given(xml=_documents(), edits=st.lists(_edits(), min_size=1, max_size=4))
def test_update_roundtrip_property(tmp_path_factory, xml, edits):
    """update → differential oracle → serialize → reparse → reload.

    Three-way agreement: the stored applier matches the DOM oracle, and
    the edited stored document survives a full serialize/reparse/reload
    cycle byte-for-byte.
    """
    tmp_path = tmp_path_factory.mktemp("prop")
    dbms = XmlDbms(str(tmp_path / "p.db"))
    try:
        dbms.load("doc", xml=xml)
        dom = parse_document(xml)
        for statement in edits:
            program = parse_program(statement)
            try:
                dbms.update("doc", statement)
            except UpdateError:
                # Oracle must reject it too (e.g. root deleted earlier,
                # multi-node insert target) — and reject consistently.
                with pytest.raises(UpdateError):
                    apply_to_dom(dom, program.body)
                continue
            apply_to_dom(dom, program.body)
            assert stored_xml(dbms, "doc") == serialize(dom)
        edited = stored_xml(dbms, "doc")
        dbms.load("reloaded", xml=edited)
        assert stored_xml(dbms, "reloaded") == edited
    finally:
        dbms.close()
