"""XASR loader and stored-document tests — Figure 2 and Example 1 are
asserted verbatim."""

import pytest

from repro.errors import CatalogError, StorageError
from repro.storage.db import Database
from repro.xasr import ROOT, TEXT, StoredDocument, load_document
from repro.xasr.schema import TYPE_NAMES
from repro.xmlkit.parser import parse
from repro.xmlkit.serializer import serialize
from repro.xmlkit.dom import deep_equal
from repro.workloads.handmade import FIGURE2_XASR, FIGURE2_XML


@pytest.fixture
def fig2_doc(database):
    load_document(database, "fig2", xml=FIGURE2_XML)
    return StoredDocument(database, "fig2")


class TestFigure2:
    """The paper's running example, asserted number for number."""

    def test_exact_in_out_labels(self, fig2_doc):
        actual = [(node.in_, node.out, node.parent_in,
                   TYPE_NAMES[node.type], node.value or None)
                  for node in fig2_doc.scan()]
        assert actual == FIGURE2_XASR

    def test_example1_journal_tuple(self, fig2_doc):
        node = fig2_doc.node(2)
        assert node.describe() == "(2, 17, 1, element, journal)"

    def test_example1_ana_tuple(self, fig2_doc):
        node = fig2_doc.node(5)
        assert node.describe() == "(5, 6, 4, text, Ana)"

    def test_root_has_in_1(self, fig2_doc):
        root = fig2_doc.root()
        assert root.in_ == 1 and root.type == ROOT

    def test_child_iff_parent_in(self, fig2_doc):
        """xi+1 is child of xi ⇔ xi+1.parent_in = xi.in (paper)."""
        nodes = list(fig2_doc.scan())
        for parent in nodes:
            children = {node.in_ for node in nodes
                        if node.parent_in == parent.in_
                        and node.in_ != parent.in_}
            via_index = {node.in_
                         for node in fig2_doc.children(parent.in_)}
            assert children == via_index

    def test_descendant_iff_interval(self, fig2_doc):
        """xi+1 descendant of xi ⇔ xi.in < xi+1.in ∧ xi.out > xi+1.out."""
        nodes = list(fig2_doc.scan())
        for ancestor in nodes:
            expected = {node.in_ for node in nodes
                        if ancestor.in_ < node.in_
                        and ancestor.out > node.out}
            got = {node.in_ for node in fig2_doc.descendants(ancestor)}
            assert got == expected


class TestLoader:
    def test_statistics(self, database):
        stats = load_document(database, "d", xml=FIGURE2_XML)
        assert stats.total_nodes == 9
        assert stats.element_count == 5
        assert stats.text_count == 3
        assert stats.label_counts == {"journal": 1, "authors": 1,
                                      "name": 2, "title": 1}
        assert stats.max_in == 18
        # name elements sit at depth 3; their text children at depth 4.
        assert stats.max_depth == 4

    def test_average_depth(self, database):
        stats = load_document(database, "d", xml=FIGURE2_XML)
        # depths: root 0, journal 1, authors 2, name 3, Ana 3(text at
        # depth 3? text depth == stack depth), name 3, Bob, title 2, DB
        assert stats.average_depth == pytest.approx(stats.depth_sum / 9)

    def test_duplicate_load_rejected(self, database):
        load_document(database, "d", xml="<a/>")
        with pytest.raises(CatalogError):
            load_document(database, "d", xml="<a/>")

    def test_exactly_one_source_required(self, database):
        with pytest.raises(ValueError):
            load_document(database, "d", xml="<a/>", path="also.xml")
        with pytest.raises(ValueError):
            load_document(database, "d")

    def test_streaming_and_bulk_agree(self, tmp_path):
        xml = FIGURE2_XML
        with Database.create(str(tmp_path / "a.db")) as db_a, \
                Database.create(str(tmp_path / "b.db")) as db_b:
            load_document(db_a, "d", xml=xml, bulk=True)
            load_document(db_b, "d", xml=xml, bulk=False)
            rows_a = list(StoredDocument(db_a, "d").scan())
            rows_b = list(StoredDocument(db_b, "d").scan())
            assert rows_a == rows_b

    def test_load_from_file(self, database, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text(FIGURE2_XML, encoding="utf-8")
        load_document(database, "d", path=str(path))
        assert len(StoredDocument(database, "d")) == 9

    def test_long_text_value_goes_to_overflow(self, database):
        big = "x" * 5000
        load_document(database, "d", xml=f"<a>{big}</a>")
        doc = StoredDocument(database, "d")
        text = [node for node in doc.scan() if node.type == TEXT]
        assert text[0].value == big

    def test_missing_document_raises(self, database):
        with pytest.raises(CatalogError):
            StoredDocument(database, "ghost")


class TestAccessPaths:
    def test_nodes_with_label(self, fig2_doc):
        assert [node.in_ for node in fig2_doc.nodes_with_label("name")] \
            == [4, 8]

    def test_nodes_with_absent_label(self, fig2_doc):
        assert list(fig2_doc.nodes_with_label("ghost")) == []

    def test_text_nodes_with_value(self, fig2_doc):
        assert [node.in_
                for node in fig2_doc.text_nodes_with_value("Bob")] == [9]

    def test_text_value_no_prefix_false_positives(self, database):
        load_document(database, "d", xml="<r><a>ab</a><b>abc</b></r>")
        doc = StoredDocument(database, "d")
        assert len(list(doc.text_nodes_with_value("ab"))) == 1

    def test_long_value_lookup_rechecks_record(self, database):
        long_a = "y" * 100
        long_b = "y" * 100 + "tail"
        load_document(database, "d",
                      xml=f"<r><a>{long_a}</a><b>{long_b}</b></r>")
        doc = StoredDocument(database, "d")
        assert len(list(doc.text_nodes_with_value(long_a))) == 1
        assert len(list(doc.text_nodes_with_value(long_b))) == 1

    def test_range_scan(self, fig2_doc):
        ins = [node.in_ for node in fig2_doc.range(3, 9)]
        assert ins == [3, 4, 5, 8, 9]

    def test_node_missing_in_value(self, fig2_doc):
        with pytest.raises(StorageError):
            fig2_doc.node(6)  # 6 is an out value, not an in value

    def test_label_count_from_statistics(self, fig2_doc):
        assert fig2_doc.label_count("name") == 2
        assert fig2_doc.label_count("ghost") == 0


class TestReconstruction:
    """'XML documents stored using this schema can be reconstructed.'"""

    def test_full_document_round_trip(self, fig2_doc):
        rebuilt = fig2_doc.to_document()
        assert deep_equal(rebuilt, parse(FIGURE2_XML))

    def test_subtree_serialization(self, fig2_doc):
        authors = fig2_doc.node(3)
        assert fig2_doc.serialize_subtree(authors) == \
            "<authors><name>Ana</name><name>Bob</name></authors>"

    def test_text_subtree(self, fig2_doc):
        assert fig2_doc.serialize_subtree(fig2_doc.node(5)) == "Ana"

    @pytest.mark.parametrize("xml", [
        "<a/>", "<a>x</a>", "<a><b/><c>t</c><d><e>u</e></d></a>",
        "<a><a><a>deep</a></a></a>",
    ])
    def test_round_trip_various_shapes(self, database, xml):
        load_document(database, "d", xml=xml)
        doc = StoredDocument(database, "d")
        assert serialize(doc.to_document()) == serialize(parse(xml))
