"""Document-order and duplicate semantics across engines.

Milestone 3's longest discussion is ordering: projections of
hierarchically sorted intermediate results need duplicate elimination,
and the engines differ in *how* they guarantee order (order-preserving
join orders vs. sorting).  These tests pin the observable semantics on
purposely tricky inputs for every engine.
"""

import pytest

from repro.engine.navigational import NavigationalEvaluator
from repro.xasr import StoredDocument, load_document
from repro.xq.parser import parse_query

#: NN leaves sit under several nested NPs — the classic duplicate
#: source: (np, nn) pairs are distinct, but projections on nn repeat.
NESTED = ("<FILE><S><NP><NP><NN>inner</NN></NP><PP><NN>pp</NN></PP>"
          "</NP><NN>outer</NN></S></FILE>")

PROFILES = ["m1", "m2", "m3", "m4", "engine-2", "engine-5"]


@pytest.fixture
def nested(dbms):
    dbms.load("nested", xml=NESTED)
    return dbms


class TestOrderAndDuplicates:
    def test_nested_for_emits_one_result_per_pair(self, nested):
        """for (x, y) pairs: 'inner' is reachable from two NPs, so it is
        emitted twice — set semantics applies to *bindings*, not
        output."""
        query = "for $x in //NP return for $y in $x//NN return $y"
        expected = nested.query("nested", query, profile="m1")
        # 'inner' sits under both the outer and the inner NP (two
        # pairs); 'pp' only under the outer one.
        assert expected == "<NN>inner</NN><NN>pp</NN><NN>inner</NN>"
        for profile in PROFILES[1:]:
            assert nested.query("nested", query, profile=profile) == \
                expected, profile

    def test_existential_collapses_duplicates(self, nested):
        """With an if/some, multiple witnesses yield ONE output per
        outer binding (the π∅ dedup of the nullary relfor)."""
        query = ("for $x in //NP return "
                 "if (some $y in $x//NN satisfies true()) "
                 "then <has/> else ()")
        expected = nested.query("nested", query, profile="m1")
        assert expected == "<has/>" * 2
        for profile in PROFILES[1:]:
            assert nested.query("nested", query, profile=profile) == \
                expected, profile

    def test_results_in_document_order(self, nested):
        """Descendant results stream in document order on every
        engine."""
        query = "//NN/text()"
        for profile in PROFILES:
            assert nested.query("nested", query, profile=profile) == \
                "innerppouter", profile

    def test_sequence_concatenation_repeats_nodes(self, nested):
        query = "//NN, //NN"
        expected = nested.query("nested", query, profile="m1")
        assert expected.count("<NN>") == 6
        for profile in PROFILES[1:]:
            assert nested.query("nested", query, profile=profile) == \
                expected, profile

    def test_descendant_of_self_nested_same_label(self, nested):
        """NP inside NP: the (outer, inner) pair exists, (inner, outer)
        does not — interval containment is asymmetric."""
        query = "for $a in //NP return for $b in $a//NP return <pair/>"
        for profile in PROFILES:
            assert nested.query("nested", query,
                                profile=profile) == "<pair/>", profile


class TestNavigationalDetails:
    def test_step_from_text_node_is_empty(self, database):
        load_document(database, "d", xml="<a>txt</a>")
        doc = StoredDocument(database, "d")
        evaluator = NavigationalEvaluator(doc)
        text_node = next(node for node in doc.scan() if node.is_text)
        results = evaluator.evaluate(
            parse_query("for $y in $t/x return $y"), {"t": text_node})
        assert results == []

    def test_ticker_is_called_during_navigation(self, database):
        load_document(database, "d", xml="<a><b/><c/><d/></a>")
        doc = StoredDocument(database, "d")
        ticks = []
        evaluator = NavigationalEvaluator(doc,
                                          ticker=lambda: ticks.append(1))
        evaluator.evaluate(parse_query("//b"))
        assert ticks

    def test_environment_prebinding(self, database):
        load_document(database, "d", xml="<a><b>x</b></a>")
        doc = StoredDocument(database, "d")
        evaluator = NavigationalEvaluator(doc)
        b_node = next(node for node in doc.scan()
                      if node.value == "b" and node.is_element)
        results = evaluator.evaluate(parse_query("$v/text()"),
                                     {"v": b_node})
        assert [node.text for node in results] == ["x"]


class TestWhitespaceHandling:
    def test_strip_whitespace_affects_text_nodes(self, dbms):
        xml = "<a>\n  <b>x</b>\n</a>"
        dbms.load("stripped", xml=xml, strip_whitespace=True)
        dbms.load("kept", xml=xml, strip_whitespace=False)
        assert dbms.query("stripped", "//text()") == "x"
        assert dbms.query("kept", "//text()") == "\n  x\n"

    def test_whitespace_documents_agree_across_engines(self, dbms):
        dbms.load("kept", xml="<a> <b>x</b> </a>",
                  strip_whitespace=False)
        expected = dbms.query("kept", "//text()", profile="m1")
        for profile in ("m2", "m4"):
            assert dbms.query("kept", "//text()", profile=profile) == \
                expected
