"""Differential concurrency stress suite.

The serving layer's correctness claim is *differential*: whatever a
workload produces when executed serially, it must produce byte-identical
results when the same queries run from many threads and sessions against
one shared :class:`~repro.core.dbms.XmlDbms` — and it must keep making
progress (every test runs under a global deadlock timeout).

Layers under test:

* the :class:`~repro.storage.latch.SharedLatch` primitive itself;
* the latched B+-tree (concurrent scans racing inserts vs. a dict model);
* the shared engine/plan caches (the stress test);
* catalog races — ``load()`` replacing a document under an open cursor;
* the :class:`~repro.core.server.QueryServer` worker pool, admission
  control and deadlines.
"""

import threading
import time

import pytest

from repro.core import QueryServer, XmlDbms
from repro.errors import (
    AdmissionError,
    CatalogError,
    ResourceLimitExceeded,
    ServerClosedError,
    WalError,
    XQSyntaxError,
)
from repro.storage.btree import BTree
from repro.storage.buffer import BufferPool
from repro.storage.latch import SharedLatch
from repro.storage.pager import Pager
from repro.storage.record import encode_key
from repro.workloads.dblp import DblpConfig, generate_dblp
from repro.workloads.queries import CORRECTNESS_QUERIES

#: Global per-test deadlock budget (seconds).  Generous — the suite
#: normally finishes in a fraction of it — but finite, so a latch cycle
#: fails the test instead of hanging CI.
JOIN_TIMEOUT = 120.0

#: The stress geometry the issue pins: 8 threads × 16 sessions each.
STRESS_THREADS = 8
SESSIONS_PER_THREAD = 16

#: A representative slice of the milestone workload: every query family
#: (paths, nesting, construction, some/and/or/not, strict merging), kept
#: small enough that the full stress matrix stays fast.
STRESS_QUERIES = [
    CORRECTNESS_QUERIES["q01-all-titles"],
    CORRECTNESS_QUERIES["q03-text-leaves"],
    CORRECTNESS_QUERIES["q08-some-const"],
    CORRECTNESS_QUERIES["q10-strict-merge"],
    CORRECTNESS_QUERIES["q11-boolean"],
    CORRECTNESS_QUERIES["q16-kitchen-sink"],
]
STRESS_PROFILES = ["m4", "engine-2"]


def run_threads(workers, timeout=JOIN_TIMEOUT):
    """Start, join with a deadline, and re-raise worker failures."""
    errors = []

    def guarded(fn):
        def run():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 — reported below
                errors.append(exc)
        return run

    threads = [threading.Thread(target=guarded(fn), daemon=True)
               for fn in workers]
    for thread in threads:
        thread.start()
    deadline = time.monotonic() + timeout
    for thread in threads:
        thread.join(max(0.0, deadline - time.monotonic()))
    stuck = [thread for thread in threads if thread.is_alive()]
    assert not stuck, (f"{len(stuck)} worker thread(s) still alive after "
                       f"{timeout}s — deadlock?")
    if errors:
        raise errors[0]


@pytest.fixture(scope="module")
def shared_dbms(tmp_path_factory):
    """One dbms, shared by every thread in this module."""
    path = str(tmp_path_factory.mktemp("conc") / "conc.db")
    with XmlDbms(path, buffer_capacity=512) as dbms:
        dbms.load("dblp", xml=generate_dblp(
            DblpConfig(articles=20, inproceedings=6, name_pool=8)))
        yield dbms


# ---------------------------------------------------------------------------
# the latch primitive
# ---------------------------------------------------------------------------


class TestSharedLatch:
    def test_readers_are_concurrent(self):
        latch = SharedLatch()
        inside = threading.Barrier(4, timeout=JOIN_TIMEOUT)

        def reader():
            with latch.shared():
                # All four readers must sit inside the latch at once.
                inside.wait()

        run_threads([reader] * 4)

    def test_writer_excludes_readers_and_writers(self):
        latch = SharedLatch()
        active = []
        seen_overlap = []

        def worker(exclusive):
            def run():
                for __ in range(200):
                    ctx = (latch.exclusive() if exclusive
                           else latch.shared())
                    with ctx:
                        active.append(exclusive)
                        if exclusive and len(active) > 1:
                            seen_overlap.append(tuple(active))
                        active.pop()
            return run

        run_threads([worker(True), worker(True), worker(False),
                     worker(False)])
        assert not seen_overlap

    def test_exclusive_is_reentrant_and_allows_shared_inside(self):
        latch = SharedLatch()
        with latch.exclusive():
            with latch.exclusive():
                with latch.shared():
                    assert latch.held_exclusively()
        assert not latch.held_exclusively()

    def test_release_exclusive_by_stranger_raises(self):
        latch = SharedLatch()
        with pytest.raises(RuntimeError):
            latch.release_exclusive()

    def test_nested_shared_overtakes_a_waiting_writer(self):
        """Reader preference, the property the B+-tree depends on: a
        thread already holding the latch shared (an open scan) may take
        it shared again even while a writer is queued — a waiting
        writer blocks nobody."""
        latch = SharedLatch()
        reader_inside = threading.Event()
        writer_started = threading.Event()

        def reader():
            with latch.shared():
                reader_inside.set()
                assert writer_started.wait(JOIN_TIMEOUT)
                time.sleep(0.05)          # let the writer block
                with latch.shared():      # must not queue behind it
                    pass

        def writer():
            assert reader_inside.wait(JOIN_TIMEOUT)
            writer_started.set()
            with latch.exclusive():
                pass

        run_threads([reader, writer])


# ---------------------------------------------------------------------------
# latched B+-tree vs. dict model
# ---------------------------------------------------------------------------


class TestBTreeUnderConcurrency:
    def test_scans_race_inserts_without_corruption(self, tmp_path):
        pager = Pager(str(tmp_path / "t.db"), create=True, page_size=512)
        pool = BufferPool(pager, capacity=64)
        tree = BTree.create(pool)
        committed = {}
        commit_lock = threading.Lock()

        def writer(base):
            def run():
                for i in range(150):
                    key = base + i * 7
                    with commit_lock:
                        tree.insert(encode_key((key,)),
                                    str(key).encode(), replace=True)
                        committed[key] = str(key).encode()
            return run

        def scanner():
            for __ in range(60):
                with commit_lock:
                    expected = dict(committed)
                got = dict(tree.range_scan())
                # Every key committed before the scan started must be
                # present with its exact value; keys are strictly
                # ascending (no torn splits).
                keys = list(got)
                assert keys == sorted(keys)
                for key, value in expected.items():
                    assert got[encode_key((key,))] == value

        try:
            run_threads([writer(0), writer(100_000), scanner, scanner])
            assert dict(tree.range_scan()) == {
                encode_key((key,)): value
                for key, value in committed.items()}
        finally:
            pager.close()

    def test_point_lookups_race_inserts(self, tmp_path):
        pager = Pager(str(tmp_path / "p.db"), create=True, page_size=512)
        pool = BufferPool(pager, capacity=32)
        tree = BTree.create(pool)
        for i in range(300):
            tree.insert(encode_key((i,)), str(i).encode())

        def reader():
            for i in range(300):
                assert tree.search(encode_key((i,))) == str(i).encode()

        def writer():
            for i in range(300, 600):
                tree.insert(encode_key((i,)), str(i).encode())

        try:
            run_threads([reader, reader, reader, writer])
            assert len(tree) == 600
        finally:
            pager.close()


# ---------------------------------------------------------------------------
# the headline stress test: N threads × M sessions ≡ serial
# ---------------------------------------------------------------------------


class TestStressDifferential:
    def test_shared_dbms_serves_identical_results(self, shared_dbms):
        """8 threads × 16 sessions each replay the workload; every result
        must be byte-identical to its serial execution."""
        expected = {
            (profile, query): shared_dbms.session(profile=profile)
            .query("dblp", query)
            for profile in STRESS_PROFILES
            for query in STRESS_QUERIES
        }

        def client(thread_index):
            def run():
                for session_index in range(SESSIONS_PER_THREAD):
                    profile = STRESS_PROFILES[
                        (thread_index + session_index)
                        % len(STRESS_PROFILES)]
                    with shared_dbms.session(profile=profile) as session:
                        for query in STRESS_QUERIES:
                            assert session.query("dblp", query) == \
                                expected[(profile, query)]
            return run

        run_threads([client(index) for index in range(STRESS_THREADS)])

    def test_interleaved_cursors_across_threads(self, shared_dbms):
        """Each thread drives several half-open cursors of its own while
        the other threads do the same against the shared engines."""
        queries = STRESS_QUERIES[:3]
        session = shared_dbms.session()
        expected = [session.query("dblp", query) for query in queries]

        def client():
            own = shared_dbms.session()
            prepared = [own.prepare("dblp", query) for query in queries]
            for __ in range(8):
                cursors = [p.execute() for p in prepared]
                # Drain round-robin, two nodes at a time.
                parts = [[] for __ in cursors]
                live = set(range(len(cursors)))
                while live:
                    for index in sorted(live):
                        nodes = cursors[index].fetch(2)
                        if nodes:
                            parts[index].extend(nodes)
                        else:
                            live.discard(index)
                for cursor in cursors:
                    cursor.close()
                from repro.xmlkit.serializer import serialize
                for index, nodes in enumerate(parts):
                    assert "".join(serialize(node) for node in nodes) \
                        == expected[index]
            return None

        run_threads([client] * STRESS_THREADS)

    def test_shared_session_prepare_is_thread_safe(self, shared_dbms):
        """One *shared* session: the locked plan cache serves every
        thread the same compiled plans, and hit counts add up."""
        session = shared_dbms.session()
        query = STRESS_QUERIES[0]
        expected = session.query("dblp", query)

        def client():
            for __ in range(20):
                assert session.query("dblp", query) == expected

        run_threads([client] * STRESS_THREADS)
        info = session.cache_info()
        assert info.hits + info.misses >= STRESS_THREADS * 20
        assert info.size >= 1


# ---------------------------------------------------------------------------
# catalog races: load()/drop() vs. open cursors
# ---------------------------------------------------------------------------

OLD_DOC = "<r>" + "".join(f"<item>old{i}</item>" for i in range(64)) + "</r>"
NEW_DOC = "<r>" + "".join(f"<item>new{i}</item>" for i in range(5)) + "</r>"


class TestCatalogRaces:
    @pytest.fixture
    def dbms(self, tmp_path):
        with XmlDbms(str(tmp_path / "cat.db"), buffer_capacity=64) as dbms:
            dbms.load("doc", xml=OLD_DOC)
            yield dbms

    def test_open_cursor_survives_replacement_on_old_snapshot(self, dbms):
        """A cursor opened before ``load()`` replaces its document
        finishes on the *old* snapshot — never a mix of the two."""
        session = dbms.session()
        expected_old = session.query("doc", "//item")
        prepared = session.prepare("doc", "//item")
        cursor = prepared.execute()
        first = cursor.fetch(3)          # cursor is live mid-results

        dbms.load("doc", xml=NEW_DOC)    # replace under the open cursor

        from repro.xmlkit.serializer import serialize
        rest = cursor.fetchall()
        cursor.close()
        text = "".join(serialize(node) for node in first + rest)
        assert text == expected_old
        assert "new" not in text

        # The *next* execution of the same prepared query re-prepares
        # against the replacement document.
        assert prepared.query() == session.query("doc", "//item")
        assert "old" not in prepared.query()

    def test_replacement_racing_readers_is_linearizable(self, dbms):
        """Concurrent readers during ``load()`` see exactly the old or
        exactly the new document, never a torn mixture."""
        session = dbms.session()
        old_text = session.query("doc", "//item")
        stop = threading.Event()
        outputs = []

        def reader():
            own = dbms.session()
            while not stop.is_set():
                outputs.append(own.query("doc", "//item"))

        def replacer():
            try:
                for xml in (NEW_DOC, OLD_DOC, NEW_DOC):
                    time.sleep(0.02)
                    dbms.load("doc", xml=xml)
            finally:
                stop.set()

        run_threads([reader, reader, replacer])
        new_text = dbms.session().query("doc", "//item")
        for text in outputs:
            assert text in (old_text, new_text), \
                f"torn read: {text[:80]}..."

    def test_execute_after_drop_raises_catalog_error(self, dbms):
        session = dbms.session()
        prepared = session.prepare("doc", "//item")
        assert prepared.query()          # works while loaded
        dbms.drop("doc")
        with pytest.raises(CatalogError):
            prepared.execute()


# ---------------------------------------------------------------------------
# the query server
# ---------------------------------------------------------------------------


class TestQueryServer:
    def test_results_match_serial_under_load(self, shared_dbms):
        expected = {query: shared_dbms.session().query("dblp", query)
                    for query in STRESS_QUERIES}
        with QueryServer(shared_dbms, workers=STRESS_THREADS,
                         max_pending=256) as server:
            futures = [(query, server.submit("dblp", query,
                                             serialize=True))
                       for __ in range(6)
                       for query in STRESS_QUERIES]
            for query, future in futures:
                assert future.result(timeout=JOIN_TIMEOUT) \
                    == expected[query]
            stats = server.stats()
        assert stats.completed == len(futures)
        assert stats.failed == stats.rejected == 0

    def test_admission_control_rejects_over_queue_depth(self, shared_dbms):
        with QueryServer(shared_dbms, workers=1, max_pending=2) as server:
            # One worker, queue depth 2: a burst of 50 submissions must
            # overrun the queue while the worker is busy, and each
            # overrun fails fast with AdmissionError.
            rejected = 0
            accepted = []
            for __ in range(50):
                try:
                    accepted.append(
                        server.submit("dblp", STRESS_QUERIES[5]))
                except AdmissionError:
                    rejected += 1
            assert rejected > 0, "queue depth was never enforced"
            for future in accepted:
                future.result(timeout=JOIN_TIMEOUT)
            assert server.stats().rejected == rejected

    def test_deadline_counts_queue_wait(self, shared_dbms):
        """A query admitted under a deadline that expires while it sits
        in the queue fails with ResourceLimitExceeded."""
        with QueryServer(shared_dbms, workers=1,
                         max_pending=64) as server:
            backlog = [server.submit("dblp", query)
                       for __ in range(8)
                       for query in STRESS_QUERIES]
            doomed = server.submit("dblp", STRESS_QUERIES[0],
                                   time_limit=1e-6)
            with pytest.raises(ResourceLimitExceeded):
                doomed.result(timeout=JOIN_TIMEOUT)
            for future in backlog:
                future.result(timeout=JOIN_TIMEOUT)

    def test_submit_after_close_raises(self, shared_dbms):
        server = QueryServer(shared_dbms, workers=1)
        server.close()
        with pytest.raises(ServerClosedError):
            server.submit("dblp", "//title")

    def test_close_without_wait_cancels_pending(self, shared_dbms):
        server = QueryServer(shared_dbms, workers=1, max_pending=64)
        futures = [server.submit("dblp", query)
                   for __ in range(8)
                   for query in STRESS_QUERIES]
        server.close(wait=False)
        cancelled = sum(1 for future in futures if future.cancelled())
        finished = sum(1 for future in futures
                       if future.done() and not future.cancelled())
        assert cancelled + finished == len(futures)
        assert server.stats().cancelled == cancelled

    def test_per_query_overrides_and_bindings(self, shared_dbms):
        query = ("declare variable $who external; "
                 "for $a in //author return "
                 "if (some $t in $a/text() satisfies $t = $who) "
                 "then <hit>{ $a }</hit> else ()")
        session = shared_dbms.session()
        authors = session.execute("dblp", "//author/text()")
        who = authors[0].text
        expected = session.query("dblp", query, bindings={"who": who})
        with QueryServer(shared_dbms, workers=2) as server:
            future = server.submit("dblp", query, bindings={"who": who},
                                   profile="engine-2", serialize=True)
            assert future.result(timeout=JOIN_TIMEOUT) == expected

    def test_server_rides_out_a_replacement_load(self, tmp_path):
        """Queries racing a ``load()`` through the server resolve to the
        old or the new document, and queries after it see the new one."""
        with XmlDbms(str(tmp_path / "srv.db")) as dbms:
            dbms.load("doc", xml=OLD_DOC)
            old_text = dbms.session().query("doc", "//item")
            with QueryServer(dbms, workers=4, max_pending=256) as server:
                futures = []
                for index in range(40):
                    if index == 20:
                        dbms.load("doc", xml=NEW_DOC)
                    futures.append(server.submit("doc", "//item",
                                                 serialize=True))
                new_text = dbms.session().query("doc", "//item")
                for future in futures:
                    assert future.result(timeout=JOIN_TIMEOUT) in (
                        old_text, new_text)
                late = server.submit("doc", "//item", serialize=True)
                assert late.result(timeout=JOIN_TIMEOUT) == new_text


# ---------------------------------------------------------------------------
# latency histograms and lifecycle hardening (the network-PR satellites)
# ---------------------------------------------------------------------------


class TestServerObservability:
    def test_stats_expose_latency_percentiles(self, shared_dbms):
        """Every served query lands in both fixed-bucket histograms,
        and the snapshots expose ordered, finite percentiles."""
        with QueryServer(shared_dbms, workers=2,
                         max_pending=64) as server:
            futures = [server.submit("dblp", query)
                       for __ in range(4)
                       for query in STRESS_QUERIES]
            for future in futures:
                future.result(timeout=JOIN_TIMEOUT)
            stats = server.stats()
        for snapshot in (stats.queue_wait, stats.execution):
            assert snapshot.count == len(futures)
            assert 0.0 <= snapshot.p50_ms <= snapshot.p90_ms \
                <= snapshot.p99_ms
            assert snapshot.p99_ms <= snapshot.max_ms * 2 + 1e-9
            assert snapshot.mean_ms >= 0.0
        # Real work happened, so execution time is measurably nonzero.
        assert stats.execution.max_ms > 0.0
        assert stats.execution.as_dict()["p99_ms"] \
            == stats.execution.p99_ms

    def test_failed_queries_still_count_into_histograms(self, shared_dbms):
        with QueryServer(shared_dbms, workers=1) as server:
            good = server.submit("dblp", STRESS_QUERIES[0])
            bad = server.submit("dblp", "for $x in")
            good.result(timeout=JOIN_TIMEOUT)
            with pytest.raises(XQSyntaxError):
                bad.result(timeout=JOIN_TIMEOUT)
            stats = server.stats()
        assert stats.execution.count == 2
        assert stats.queue_wait.count == 2

    def test_server_stats_snapshots_consistent_under_burst(
            self, shared_dbms):
        """No torn counter reads: every ``stats()`` snapshot taken
        while a query burst is in flight satisfies the accounting
        invariants, and per-reader the counters only move forward."""
        with QueryServer(shared_dbms, workers=3,
                         max_pending=256) as server:
            stop = threading.Event()
            violations = []

            def submitter():
                for __ in range(6):
                    futures = [server.submit("dblp", query)
                               for query in STRESS_QUERIES]
                    for future in futures:
                        future.result(timeout=JOIN_TIMEOUT)
                stop.set()

            def reader():
                previous = None
                while not stop.is_set():
                    stats = server.stats()
                    settled = (stats.completed + stats.failed
                               + stats.cancelled + stats.pending)
                    if settled > stats.submitted:
                        violations.append(
                            f"settled {settled} > submitted "
                            f"{stats.submitted}")
                    if stats.pending > stats.peak_pending:
                        violations.append("pending above its watermark")
                    if previous is not None:
                        for field in ("submitted", "completed",
                                      "failed", "cancelled",
                                      "rejected"):
                            if getattr(stats, field) < getattr(
                                    previous, field):
                                violations.append(
                                    f"{field} went backwards")
                        if (stats.execution.count
                                < previous.execution.count):
                            violations.append(
                                "execution histogram shrank")
                    previous = stats
                    # Exercise the registry read path concurrently too.
                    page = server.metrics_registry.collect()
                    if page.get("server.submitted", 0) < 0:
                        violations.append("negative registry counter")
                    time.sleep(0.001)  # let the workers breathe

            run_threads([submitter, reader, reader])
            assert not violations, violations[:5]
            final = server.stats()
            assert final.submitted == 6 * len(STRESS_QUERIES)
            assert final.completed == final.submitted

    def test_mediator_stats_snapshots_consistent_under_burst(
            self, tmp_path):
        """MediatorStats reads race mediator traffic without tearing:
        counters never go backwards and never overcount traffic."""
        from repro.net import NetworkServer
        from repro.shard import ShardedServer

        dbs, servers = [], []
        for index in range(2):
            dbms = XmlDbms(str(tmp_path / f"shard-{index}.db"),
                           buffer_capacity=128)
            server = NetworkServer(dbms, workers=2, page_size=8,
                                   log_interval=0.0, shard_id=index)
            server.start()
            dbs.append(dbms)
            servers.append(server)
        try:
            with ShardedServer([s.address for s in servers],
                               timeout=30.0) as mediator:
                mediator.load(
                    "r",
                    "<r>" + "<i>x</i>" * 24 + "</r>", parts=2)
                stop = threading.Event()
                violations = []
                rounds = 5

                def driver():
                    for __ in range(rounds):
                        rows = mediator.execute("r", "//i")
                        assert len(rows) == 24
                    stop.set()

                def reader():
                    previous = None
                    while not stop.is_set():
                        stats = mediator.stats()
                        if stats.rows_streamed > (
                                stats.queries + stats.fanouts) * 24:
                            violations.append(
                                "rows_streamed overcounts")
                        if previous is not None:
                            for field in ("queries", "fanouts",
                                          "updates", "loads",
                                          "errors", "rows_streamed"):
                                if getattr(stats, field) < getattr(
                                        previous, field):
                                    violations.append(
                                        f"{field} went backwards")
                        previous = stats
                        mediator.metrics_registry.render_text()
                        time.sleep(0.001)

                run_threads([driver, reader, reader])
                assert not violations, violations[:5]
                final = mediator.stats()
                assert final.fanouts == rounds
                assert final.rows_streamed == rounds * 24
                assert final.errors == 0
        finally:
            for server in servers:
                server.stop()
            for dbms in dbs:
                dbms.close()


class TestStreaming:
    def test_stream_pages_reassemble_the_serial_result(self, shared_dbms):
        expected = shared_dbms.session().query(
            "dblp", STRESS_QUERIES[0])
        with QueryServer(shared_dbms, workers=2) as server:
            stream = server.submit_stream("dblp", STRESS_QUERIES[0],
                                          serialize=True, page_size=3)
            pages = list(stream.pages())
            assert all(len(page) <= 3 for page in pages)
            text = "".join(row for page in pages for row in page)
            assert text == expected
            assert stream.future.result(timeout=JOIN_TIMEOUT) \
                == stream.rows_produced

    def test_backpressure_bounds_producer_readahead(self, shared_dbms):
        """With the consumer stalled, the producer parks after filling
        the page buffer instead of materializing the result."""
        with QueryServer(shared_dbms, workers=1) as server:
            stream = server.submit_stream("dblp", STRESS_QUERIES[0],
                                          page_size=1,
                                          max_buffered_pages=2)
            deadline = time.monotonic() + JOIN_TIMEOUT
            while stream.rows_produced < 2:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            time.sleep(0.1)              # producer gets no further
            assert stream.rows_produced <= 2 + 2
            assert not stream.future.done()
            total = sum(len(page) for page in stream.pages())
            assert stream.future.result(timeout=JOIN_TIMEOUT) == total

    def test_closing_a_stream_frees_its_worker(self, shared_dbms):
        with QueryServer(shared_dbms, workers=1) as server:
            stream = server.submit_stream("dblp", STRESS_QUERIES[0],
                                          page_size=1,
                                          max_buffered_pages=1)
            assert stream.next_page(timeout=JOIN_TIMEOUT)
            stream.close()
            # The single worker must come back to serve this.
            after = server.submit("dblp", STRESS_QUERIES[0],
                                  serialize=True)
            assert after.result(timeout=JOIN_TIMEOUT) == \
                shared_dbms.session().query("dblp", STRESS_QUERIES[0])
            assert stream.future.result(timeout=JOIN_TIMEOUT) is None


class TestCloseSemantics:
    def test_close_is_idempotent(self, shared_dbms):
        server = QueryServer(shared_dbms, workers=1)
        server.submit("dblp", STRESS_QUERIES[0])
        server.close()
        server.close()                   # second close: quiet no-op
        with pytest.raises(ServerClosedError):
            server.submit("dblp", STRESS_QUERIES[0])
        with pytest.raises(ServerClosedError):
            server.submit_stream("dblp", STRESS_QUERIES[0])

    def test_concurrent_closers_race_submitters_without_deadlock(
            self, shared_dbms):
        """8 closers and 4 submitters hammer one server; every closer
        returns (no deadlock, enforced by run_threads' join timeout),
        every accepted future settles, and post-close submissions fail
        with ServerClosedError."""
        server = QueryServer(shared_dbms, workers=2, max_pending=128)
        start = threading.Barrier(12, timeout=JOIN_TIMEOUT)
        accepted = []
        accepted_lock = threading.Lock()

        def closer():
            start.wait()
            server.close()

        def submitter():
            start.wait()
            for __ in range(40):
                try:
                    future = server.submit("dblp", STRESS_QUERIES[0])
                except (ServerClosedError, AdmissionError):
                    pass
                else:
                    with accepted_lock:
                        accepted.append(future)

        run_threads([closer] * 8 + [submitter] * 4)
        # close(wait=True) returned everywhere: all workers are gone
        # and every accepted future has settled one way or the other.
        for future in accepted:
            assert future.done()
        with pytest.raises(ServerClosedError):
            server.submit("dblp", STRESS_QUERIES[0])

    def test_close_shuts_open_streams_with_a_typed_reason(
            self, shared_dbms):
        server = QueryServer(shared_dbms, workers=1)
        stream = server.submit_stream("dblp", STRESS_QUERIES[0],
                                      page_size=1,
                                      max_buffered_pages=1)
        assert stream.next_page(timeout=JOIN_TIMEOUT)
        server.close()
        with pytest.raises(ServerClosedError):
            while True:
                if stream.next_page(timeout=JOIN_TIMEOUT) is None:
                    break

    def test_close_with_writers_parked_in_group_commit_queue(
            self, tmp_path, monkeypatch):
        """Shutdown must never strand a commit in the group-commit queue.

        With a deliberately slow fsync, writers park in the committer
        waiting for their batch.  Closing the server (and then the
        database) while they wait must give every submitted update a
        definite outcome — a durable acknowledgement or a typed error,
        never a hang or a silent drop — and every acknowledged update
        must still be there after reopening the file.
        """
        from repro.storage import wal as walmod

        real_sync = walmod.WriteAheadLog.sync

        def slow_sync(wal):
            time.sleep(0.05)
            real_sync(wal)

        monkeypatch.setattr(walmod.WriteAheadLog, "sync", slow_sync)
        db_path = str(tmp_path / "parked.db")
        dbms = XmlDbms(db_path, buffer_capacity=256)
        dbms.load("log", xml="<log><meta>m</meta></log>")
        server = QueryServer(dbms, workers=4)
        futures = [
            server.submit("log", f"insert node <p{i}>v</p{i}> "
                                 f"as last into /log")
            for i in range(12)
        ]
        # Workers are now executing updates whose commits sit behind
        # ~50ms fsyncs; close while the committer queue is non-empty.
        server.close()
        acked = []
        for i, future in enumerate(futures):
            assert future.done()  # close(wait=True) settles everything
            try:
                result = future.result(timeout=0)
            except (ServerClosedError, WalError):
                continue  # a typed refusal is a definite outcome
            assert result.commit_lsn > 0
            acked.append(i)
        assert acked, "every update was refused — nothing exercised"
        dbms.close()
        # Reopen: recovery must replay every acknowledged commit.
        with XmlDbms(db_path) as reopened:
            text = reopened.query("log", "/log")
            for i in acked:
                assert f"<p{i}>v</p{i}>" in text
