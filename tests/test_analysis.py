"""reprolint: every rule catches its seeded violation and passes the fix.

The claims under test, per layer:

* the loader extracts comments through the tokenizer (string literals
  that *look* like pragmas are ignored), parses well-formed
  suppressions, and reports malformed or reason-less ones as RL000
  findings that are never honoured;
* each rule RL001-RL005 flags a minimal seeded violation and stays
  silent on the corrected twin of the same fixture;
* suppressions waive a finding on the same line or from the comment
  block directly above, and only for the named rule;
* fingerprints are stable under line movement, so the baseline survives
  unrelated edits; the baseline round-trips through save/load and
  ``compare`` reports both new findings and stale entries;
* the declared lock hierarchy is validated against the scanned tree
  (a declared site matching nothing is itself a finding);
* the real ``src/repro`` tree is clean — the analyzer's own acceptance
  criterion — and the CLI exit codes agree with that.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    ALL_RULES,
    analyze_modules,
    analyze_paths,
    load_source,
    repo_root,
)
from repro.analysis import baseline as baseline_io
from repro.analysis.__main__ import main as cli_main
from repro.analysis.config import LOCK_HIERARCHY, validate_hierarchy


def _findings(path, source, rules=None):
    return analyze_modules([load_source(path, source)], rules=rules)


def _rules_of(findings):
    return [finding.rule for finding in findings]


# -- loader: comments, pragmas, malformed suppressions ----------------------


def test_pragma_inside_string_literal_is_not_a_suppression():
    source = (
        "x = '# reprolint: disable=RL005 not a real pragma'\n"
    )
    module = load_source("src/repro/fake.py", source)
    assert module.suppressions == {}
    assert module.problems == []


def test_suppression_without_reason_is_an_rl000_finding():
    source = (
        "# reprolint: disable=RL005\n"
        "x = 1\n"
    )
    findings = _findings("src/repro/fake.py", source)
    assert _rules_of(findings) == ["RL000"]
    assert "no reason" in findings[0].message


def test_malformed_pragma_is_an_rl000_finding():
    source = (
        "# reprolint: disable-next=RL005 wrong directive\n"
        "x = 1\n"
    )
    findings = _findings("src/repro/fake.py", source)
    assert _rules_of(findings) == ["RL000"]
    assert "malformed" in findings[0].message


def test_unparseable_file_is_an_rl000_finding():
    findings = _findings("src/repro/fake.py", "def broken(:\n")
    assert _rules_of(findings) == ["RL000"]
    assert "does not parse" in findings[0].message


# -- RL001: lock order ------------------------------------------------------

_RL001_BAD = """
class BufferPool:
    def flush(self, frame):
        with self._lock:
            with frame.latch.exclusive():
                pass
"""

_RL001_GOOD = """
class BufferPool:
    def flush(self, frame):
        with frame.latch.exclusive():
            with self._lock:
                pass
"""


def test_rl001_flags_page_latch_inside_pool_mutex():
    # The fixture acquires a page latch (rank 70, outer) while already
    # holding the buffer-pool mutex (rank 80, inner) — inverted
    # against the declared order.
    bad = _findings("src/repro/storage/buffer.py", _RL001_BAD,
                    rules=["RL001"])
    assert _rules_of(bad) == ["RL001"]
    assert "page latch" in bad[0].message
    assert "buffer-pool mutex" in bad[0].message


def test_rl001_passes_the_declared_order():
    good = _findings("src/repro/storage/buffer.py", _RL001_GOOD,
                     rules=["RL001"])
    assert good == []


def test_rl001_ignores_equal_rank_reentry():
    source = (
        "class BufferPool:\n"
        "    def a(self):\n"
        "        with self._lock:\n"
        "            with self._lock:\n"
        "                pass\n"
    )
    findings = _findings("src/repro/storage/buffer.py", source,
                         rules=["RL001"])
    assert findings == []


def test_rl001_tracks_conditional_latch_expressions():
    # The real buffer pool acquires via an IfExp:
    # ``with (l.exclusive() if x else l.shared()):`` — both arms must
    # be seen as page-latch acquisitions.  Taking the catalog lock
    # (rank 50) under one is an inversion.
    source = (
        "class XmlDbms:\n"
        "    def touch(self, frame, exclusive):\n"
        "        latch = frame.latch\n"
        "        with (latch.exclusive() if exclusive\n"
        "              else latch.shared()):\n"
        "            with self._lock:\n"
        "                pass\n"
    )
    findings = _findings("src/repro/core/dbms.py", source,
                         rules=["RL001"])
    assert _rules_of(findings) == ["RL001"]
    assert "catalog lock" in findings[0].message
    assert "page latch" in findings[0].message


# -- RL002: guarded-by ------------------------------------------------------

_RL002_BAD = """
import threading

class Stats:
    def __init__(self):
        self._lock = threading.Lock()
        # guarded by: self._lock
        self._hits = 0

    def bump(self):
        self._hits += 1
"""

_RL002_GOOD = _RL002_BAD.replace(
    "    def bump(self):\n        self._hits += 1",
    "    def bump(self):\n        with self._lock:\n"
    "            self._hits += 1")


def test_rl002_flags_unguarded_access():
    findings = _findings("src/repro/fake.py", _RL002_BAD,
                         rules=["RL002"])
    assert _rules_of(findings) == ["RL002"]
    assert "self._hits" in findings[0].message
    assert findings[0].qualname == "Stats.bump"


def test_rl002_passes_guarded_access():
    assert _findings("src/repro/fake.py", _RL002_GOOD,
                     rules=["RL002"]) == []


def test_rl002_exempts_init_and_locked_suffix_methods():
    source = _RL002_BAD + (
        "\n"
        "    def reset_locked(self):\n"
        "        self._hits = 0\n"
    )
    findings = _findings("src/repro/fake.py", source, rules=["RL002"])
    # Only bump() is flagged; __init__ and reset_locked are exempt.
    assert [f.qualname for f in findings] == ["Stats.bump"]


def test_rl002_checks_closures_for_their_own_lock():
    # A closure runs after the method's lock is released, so holding
    # the lock at *definition* time does not guard the access inside.
    source = (
        "import threading\n"
        "class Stats:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        # guarded by: self._lock\n"
        "        self._hits = 0\n"
        "    def deferred(self):\n"
        "        with self._lock:\n"
        "            def later():\n"
        "                self._hits += 1\n"
        "            return later\n"
    )
    findings = _findings("src/repro/fake.py", source, rules=["RL002"])
    assert _rules_of(findings) == ["RL002"]


def test_rl002_accepts_doc_comment_annotation_form():
    source = _RL002_BAD.replace("# guarded by:", "#: guarded by:")
    findings = _findings("src/repro/fake.py", source, rules=["RL002"])
    assert _rules_of(findings) == ["RL002"]


# -- RL003: async-blocking --------------------------------------------------

_RL003_BAD = """
import time

class Conn:
    async def handle(self):
        time.sleep(0.1)

    async def wait(self, future):
        return future.result(timeout=1.0)

    async def drain(self, page_q):
        return page_q.get(timeout=0.5)
"""

_RL003_GOOD = """
import asyncio

class Conn:
    async def handle(self):
        await asyncio.sleep(0.1)

    async def wait(self, future):
        return await asyncio.wrap_future(future)

    def sync_helper(self, future):
        return future.result(timeout=1.0)
"""


def test_rl003_flags_blocking_calls_in_async_net_code():
    findings = _findings("src/repro/net/fake.py", _RL003_BAD,
                         rules=["RL003"])
    messages = " ".join(f.message for f in findings)
    assert len(findings) == 3
    assert "time.sleep" in messages
    assert "future.result" in messages
    assert "page_q.get" in messages


def test_rl003_passes_async_idioms_and_sync_functions():
    assert _findings("src/repro/net/fake.py", _RL003_GOOD,
                     rules=["RL003"]) == []


def test_rl003_only_applies_under_net():
    # The same blocking code outside net/ is another layer's business.
    assert _findings("src/repro/shard/fake.py", _RL003_BAD,
                     rules=["RL003"]) == []


def test_rl003_ignores_nested_sync_defs():
    source = (
        "import time\n"
        "class Conn:\n"
        "    async def handle(self):\n"
        "        def blocking_job():\n"
        "            time.sleep(0.1)\n"
        "        return blocking_job\n"
    )
    assert _findings("src/repro/net/fake.py", source,
                     rules=["RL003"]) == []


# -- RL004: wire taxonomy ---------------------------------------------------

_ERRORS_PY = """
class ReproError(Exception):
    pass

class QueryError(ReproError):
    pass

class BrandNewError(ReproError):
    pass
"""

_PROTOCOL_PY = """
import enum

class MsgKind(enum.IntEnum):
    HELLO = 1
    EXECUTE = 2
    CANCEL = 3

WIRE_ERRORS = {cls.__name__: cls for cls in (QueryError,)}
"""

_SERVER_PY = """
class _Connection:
    def dispatch(self, kind):
        if kind == MsgKind.HELLO:
            return self.hello()
        if kind == MsgKind.EXECUTE:
            raise BrandNewError("boom")
"""


def _rl004_modules(server_source=_SERVER_PY):
    return [
        load_source("src/repro/errors.py", _ERRORS_PY),
        load_source("src/repro/net/protocol.py", _PROTOCOL_PY),
        load_source("src/repro/net/server.py", server_source),
    ]


def test_rl004_flags_unregistered_error_and_undispatched_kind():
    findings = analyze_modules(_rl004_modules(), rules=["RL004"])
    messages = " ".join(f.message for f in findings)
    assert "BrandNewError" in messages
    assert "WIRE_ERRORS" in messages
    assert "MsgKind.CANCEL" in messages


def test_rl004_passes_when_registered_and_dispatched():
    fixed_protocol = _PROTOCOL_PY.replace(
        "(QueryError,)", "(QueryError, BrandNewError)")
    fixed_server = _SERVER_PY.replace(
        'raise BrandNewError("boom")',
        'raise BrandNewError("boom")\n'
        '        if kind == MsgKind.CANCEL:\n'
        '            return self.cancel()')
    modules = [
        load_source("src/repro/errors.py", _ERRORS_PY),
        load_source("src/repro/net/protocol.py", fixed_protocol),
        load_source("src/repro/net/server.py", fixed_server),
    ]
    assert analyze_modules(modules, rules=["RL004"]) == []


def test_rl004_ignores_raises_outside_the_serving_path():
    modules = _rl004_modules(server_source="class _Connection: pass\n")
    modules.append(load_source(
        "src/repro/xq/eval.py",
        "def f():\n    raise BrandNewError('fine here')\n"))
    findings = analyze_modules(modules, rules=["RL004"])
    assert all(f.path != "src/repro/xq/eval.py" for f in findings)


# -- RL005: resource pairing ------------------------------------------------

_RL005_BAD = """
class Operator:
    def run(self, ctx):
        ctx.meter.charge(100)
        rows = list(self.child)
        ctx.meter.release(100)
        return rows
"""

_RL005_GOOD = """
class Operator:
    def run(self, ctx):
        ctx.meter.charge(100)
        try:
            return list(self.child)
        finally:
            ctx.meter.release(100)
"""


def test_rl005_flags_charge_without_finally():
    findings = _findings("src/repro/fake.py", _RL005_BAD,
                         rules=["RL005"])
    assert _rules_of(findings) == ["RL005"]
    assert "charge()" in findings[0].message


def test_rl005_passes_try_finally():
    assert _findings("src/repro/fake.py", _RL005_GOOD,
                     rules=["RL005"]) == []


def test_rl005_passes_with_statement_form():
    source = (
        "class Reader:\n"
        "    def read(self, pool):\n"
        "        with pool.pin_snapshot() as snap:\n"
        "            return snap.lsn\n"
    )
    assert _findings("src/repro/fake.py", source,
                     rules=["RL005"]) == []


def test_rl005_flags_unreleased_snapshot_pin():
    source = (
        "class Reader:\n"
        "    def read(self, pool):\n"
        "        snap = pool.pin_snapshot()\n"
        "        rows = pool.scan(snap)\n"
        "        return rows\n"
    )
    findings = _findings("src/repro/fake.py", source, rules=["RL005"])
    assert _rules_of(findings) == ["RL005"]
    assert "pin_snapshot" in findings[0].message


def test_rl005_passes_escaping_results():
    # Returning or storing the opened resource transfers ownership.
    source = (
        "class Factory:\n"
        "    def open_stream(self, server):\n"
        "        return server.submit_stream('doc', 'q')\n"
        "    def cache_stream(self, server):\n"
        "        stream = server.submit_stream('doc', 'q')\n"
        "        self.cursors['h'] = stream\n"
    )
    assert _findings("src/repro/fake.py", source,
                     rules=["RL005"]) == []


# -- suppressions -----------------------------------------------------------


def test_suppression_waives_the_named_rule_only():
    suppressed = _RL005_BAD.replace(
        "        ctx.meter.charge(100)",
        "        # reprolint: disable=RL005 released two lines down;\n"
        "        # the window is signal-free by design\n"
        "        ctx.meter.charge(100)")
    assert _findings("src/repro/fake.py", suppressed,
                     rules=["RL005"]) == []
    wrong_rule = _RL005_BAD.replace(
        "        ctx.meter.charge(100)",
        "        # reprolint: disable=RL001 wrong rule entirely\n"
        "        ctx.meter.charge(100)")
    assert _rules_of(_findings("src/repro/fake.py", wrong_rule,
                               rules=["RL005"])) == ["RL005"]


def test_suppression_on_the_finding_line_itself():
    suppressed = _RL005_BAD.replace(
        "ctx.meter.charge(100)",
        "ctx.meter.charge(100)  "
        "# reprolint: disable=RL005 intentionally unpaired in the test")
    assert _findings("src/repro/fake.py", suppressed,
                     rules=["RL005"]) == []


def test_reasonless_suppression_does_not_waive():
    suppressed = _RL005_BAD.replace(
        "        ctx.meter.charge(100)",
        "        # reprolint: disable=RL005\n"
        "        ctx.meter.charge(100)")
    findings = _findings("src/repro/fake.py", suppressed,
                         rules=["RL005"])
    # Both the original finding and the RL000 about the bad pragma.
    assert sorted(_rules_of(findings)) == ["RL000", "RL005"]


def test_multi_rule_suppression_covers_each_listed_rule():
    suppressed = _RL005_BAD.replace(
        "        ctx.meter.charge(100)",
        "        # reprolint: disable=RL001,RL005 both waived here\n"
        "        ctx.meter.charge(100)")
    assert _findings("src/repro/fake.py", suppressed,
                     rules=["RL005"]) == []


# -- fingerprints and the baseline ratchet ----------------------------------


def test_fingerprint_is_stable_under_line_movement():
    shifted = "\n\n\n" + _RL005_BAD
    original = _findings("src/repro/fake.py", _RL005_BAD,
                         rules=["RL005"])[0]
    moved = _findings("src/repro/fake.py", shifted,
                      rules=["RL005"])[0]
    assert original.line != moved.line
    assert original.fingerprint == moved.fingerprint


def test_baseline_round_trip_and_ratchet(tmp_path):
    findings = _findings("src/repro/fake.py", _RL005_BAD,
                         rules=["RL005"])
    path = tmp_path / "baseline.json"
    baseline_io.save(path, findings)
    entries = baseline_io.load(path)
    assert [e["fingerprint"] for e in entries] == [
        findings[0].fingerprint]
    # Baselined findings are neither new nor stale.
    new, stale = baseline_io.compare(findings, entries)
    assert new == [] and stale == []
    # A fixed finding turns its entry stale (the one-way ratchet).
    new, stale = baseline_io.compare([], entries)
    assert new == [] and len(stale) == 1
    # A fresh finding against an empty baseline is new.
    new, stale = baseline_io.compare(findings, [])
    assert len(new) == 1 and stale == []


def test_baseline_load_rejects_foreign_json(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps([1, 2, 3]), encoding="utf-8")
    with pytest.raises(ValueError):
        baseline_io.load(path)


# -- hierarchy validation ---------------------------------------------------


def test_declared_hierarchy_matches_the_real_tree():
    # Running only the config validation over src/repro must report no
    # drift: every declared site matches a live acquisition.
    assert analyze_paths(rules=["RL000"]) == []


def test_validate_hierarchy_flags_a_dead_declaration():
    # The pager's home module with no lock acquisitions at all: its
    # declared site is reported as drifted, and only its.
    modules = [load_source("src/repro/storage/pager.py",
                           "class Pager:\n    pass\n")]
    findings = validate_hierarchy(modules)
    assert [f.rule for f in findings] == ["RL000"]
    assert "pager I/O mutex" in findings[0].message
    assert len(LOCK_HIERARCHY) == 12


def test_validate_hierarchy_skips_foreign_modules():
    # A module that is no declared site's home judges nothing.
    modules = [load_source("src/repro/xq/eval.py", "x = 1\n")]
    assert validate_hierarchy(modules) == []


# -- the real tree and the CLI ----------------------------------------------


def test_real_tree_is_clean():
    assert analyze_paths() == []


def test_rule_catalog_is_complete():
    assert [rule_id for rule_id, _, _ in ALL_RULES] == [
        "RL001", "RL002", "RL003", "RL004", "RL005"]


def test_cli_clean_run_exits_zero(capsys):
    assert cli_main(["src/repro/analysis"]) == 0
    assert "OK" in capsys.readouterr().out


def test_cli_baseline_contract(tmp_path, capsys):
    # The committed baseline must be tight against the real tree.
    assert cli_main(["--baseline", "analysis-baseline.json"]) == 0
    capsys.readouterr()
    # A stale entry (fabricated fingerprint) fails the run.
    stale = tmp_path / "stale.json"
    stale.write_text(json.dumps({
        "version": 1,
        "findings": [{"fingerprint": "0" * 16, "rule": "RL005",
                      "path": "src/repro/fake.py",
                      "qualname": "gone", "message": "fixed long ago"}],
    }), encoding="utf-8")
    assert cli_main(["--baseline", str(stale)]) == 1
    out = capsys.readouterr().out
    assert "no longer reproduces" in out


def test_cli_list_rules(capsys):
    assert cli_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005"):
        assert rule_id in out


def test_cli_unknown_rule_id_is_a_usage_error(capsys):
    assert cli_main(["--rules", "NOPE", "src/repro/analysis"]) == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_cli_missing_target_is_a_usage_error(capsys):
    assert cli_main(["no/such/file.py"]) == 2
    assert "no such file or directory" in capsys.readouterr().err
