"""Block-at-a-time execution: operator batches and batched cursors.

Covers the vectorized protocol end to end: operators yield bounded,
order-preserving batches that flatten to exactly the item-at-a-time row
stream; the session cursor serves ``fetch(n)`` from its buffered block
for every relation of ``n`` to ``batch_size``; interleaved cursors from
one prepared query stay independent; and a ``ResourceLimitExceeded``
raised mid-batch releases the bytes the failing operator had charged.
"""

import pytest

from repro.algebra.ra import Attr, Compare, Const, EQ
from repro.errors import ResourceLimitExceeded
from repro.physical.context import (
    Bindings,
    DEFAULT_BATCH_SIZE,
    ExecutionContext,
)
from repro.physical.materialize import Materializer
from repro.physical.operators import (
    ChildLookup,
    FullScan,
    IndexNestedLoopsJoin,
    LabelIndexScan,
    NestedLoopsJoin,
    ProjectBindings,
    SemiJoin,
)
from repro.physical.sort import ExternalSort
from repro.xasr import ELEMENT, StoredDocument, load_document
from repro.xasr.schema import RECORD_CODEC, decode_record
from repro.workloads.handmade import FIGURE2_XML


@pytest.fixture
def doc(database):
    load_document(database, "fig2", xml=FIGURE2_XML)
    return StoredDocument(database, "fig2")


def env_bindings(doc, **vars_):
    env = {"#root": doc.root()}
    env.update(vars_)
    return Bindings(env)


def _plans(doc):
    """A representative operator tree: scans, INL join, semi, project."""
    outer = LabelIndexScan("P", ELEMENT, "name", [])
    probe = ChildLookup("T", Attr("P", "in"), [])
    join = IndexNestedLoopsJoin(outer, probe)
    return [
        FullScan("A", []),
        FullScan("A", [Compare(Attr("A", "type"), EQ, Const(ELEMENT))]),
        join,
        SemiJoin(LabelIndexScan("P", ELEMENT, "name", []),
                 ChildLookup("T", Attr("P", "in"), [])),
        ProjectBindings(
            IndexNestedLoopsJoin(
                LabelIndexScan("P", ELEMENT, "name", []),
                ChildLookup("T", Attr("P", "in"), [])), ("P",)),
        NestedLoopsJoin(FullScan("B", []),
                        Materializer(FullScan("C", [])), []),
    ]


class TestOperatorBatches:
    @pytest.mark.parametrize("batch_size", [1, 2, 3, DEFAULT_BATCH_SIZE])
    def test_batches_flatten_to_execute_rows(self, doc, batch_size):
        """Concatenated batches == the item-at-a-time row stream, and
        every batch respects the ``ctx.batch_size`` bound."""
        for plan in _plans(doc):
            reference = list(plan.execute(ExecutionContext(doc),
                                          env_bindings(doc)))
            ctx = ExecutionContext(doc, batch_size=batch_size)
            batches = list(plan.batches(ctx, env_bindings(doc)))
            assert all(batch for batch in batches), "no empty batches"
            assert all(len(batch) <= batch_size for batch in batches)
            flattened = [row for batch in batches for row in batch]
            assert flattened == reference

    def test_batch_size_one_is_item_at_a_time(self, doc):
        ctx = ExecutionContext(doc, batch_size=1)
        batches = list(FullScan("A", []).batches(ctx, env_bindings(doc)))
        assert all(len(batch) == 1 for batch in batches)

    def test_external_sort_reblocks_output(self, doc):
        ctx = ExecutionContext(doc, batch_size=4)
        sort = ExternalSort(FullScan("A", []), ("A",), run_budget_rows=3)
        batches = list(sort.batches(ctx, env_bindings(doc)))
        assert sort.spilled_runs >= 3
        assert all(len(batch) <= 4 for batch in batches)
        rows = [row for batch in batches for row in batch]
        assert [row[0].in_ for row in rows] == sorted(
            row[0].in_ for row in rows)

    def test_decode_record_fast_path_matches_codec(self, doc):
        """The precompiled scan decode agrees with the generic codec."""
        for __, raw in doc.primary.items():
            assert decode_record(raw) == RECORD_CODEC.decode(raw)


class TestMidBatchResourceLimits:
    def test_sort_releases_charged_bytes_mid_batch(self, doc):
        """A memory budget tripped while buffering a batch releases the
        bytes already charged — the meter returns to zero once the
        pipeline unwinds."""
        ctx = ExecutionContext(doc, memory_budget=200, batch_size=4)
        sort = ExternalSort(FullScan("A", []), ("A",),
                            run_budget_rows=10**6)
        with pytest.raises(ResourceLimitExceeded) as excinfo:
            list(sort.batches(ctx, env_bindings(doc)))
        assert excinfo.value.kind == "memory"
        assert ctx.meter.current == 0

    def test_hash_dedup_releases_charged_bytes_mid_batch(self, doc):
        ctx = ExecutionContext(doc, memory_budget=200, batch_size=4)
        project = ProjectBindings(FullScan("A", []), ("A",),
                                  assume_sorted=False)
        with pytest.raises(ResourceLimitExceeded):
            list(project.batches(ctx, env_bindings(doc)))
        assert ctx.meter.current == 0

    def test_materializer_releases_on_reset_after_mid_batch_limit(
            self, doc):
        ctx = ExecutionContext(doc, memory_budget=200, batch_size=4)
        mat = Materializer(FullScan("A", []),
                           memory_threshold_rows=10**6)
        with pytest.raises(ResourceLimitExceeded):
            list(mat.batches(ctx, env_bindings(doc)))
        assert ctx.meter.current > 0  # cache bytes still held
        mat.reset(doc.db)
        assert ctx.meter.current == 0

    def test_materializer_spills_before_tripping_budget(self, doc):
        """A batch larger than the remaining in-memory room spills at
        the threshold instead of charging the whole batch first — a
        budget the item-at-a-time engine survived must still pass."""
        from repro.physical.context import NODE_BYTES

        # Threshold 3 → peak in-memory charge is 4 rows; budget allows
        # exactly that, while one whole 9-row batch would blow it.
        ctx = ExecutionContext(doc, memory_budget=NODE_BYTES * 4,
                               batch_size=256)
        mat = Materializer(FullScan("A", []), memory_threshold_rows=3)
        rows = [row for batch in mat.batches(ctx, env_bindings(doc))
                for row in batch]
        assert [row[0].in_ for row in rows] == [1, 2, 3, 4, 5, 8, 9,
                                                13, 14]
        # Replay comes off the spill heap, same rows.
        replay = [row for batch in mat.batches(ctx, env_bindings(doc))
                  for row in batch]
        assert replay == rows
        mat.reset(doc.db)


QUERY_MANY = "for $x in //* return <t/>"


class TestBatchedCursor:
    def _expected(self, fig2):
        return [node.name
                for node in fig2.session().execute("fig2", QUERY_MANY)]

    def test_fetch_smaller_than_batch_size(self, fig2):
        expected = self._expected(fig2)
        session = fig2.session(batch_size=DEFAULT_BATCH_SIZE)
        with session.prepare("fig2", QUERY_MANY).execute() as cursor:
            got = []
            while True:
                part = cursor.fetch(2)   # n << batch_size
                if not part:
                    break
                assert len(part) <= 2
                got.extend(node.name for node in part)
        assert got == expected

    def test_fetch_larger_than_batch_size(self, fig2):
        expected = self._expected(fig2)
        session = fig2.session(batch_size=2)
        with session.prepare("fig2", QUERY_MANY).execute() as cursor:
            got = cursor.fetch(10_000)   # n >> batch_size
        assert [node.name for node in got] == expected

    def test_fetch_exact_multiple_and_remainder(self, fig2):
        expected = self._expected(fig2)
        session = fig2.session(batch_size=3)
        with session.prepare("fig2", QUERY_MANY).execute() as cursor:
            first = cursor.fetch(3)
            rest = cursor.fetchall()
        assert [n.name for n in first + rest] == expected

    def test_iteration_interleaved_with_fetch(self, fig2):
        expected = self._expected(fig2)
        session = fig2.session(batch_size=2)
        with session.prepare("fig2", QUERY_MANY).execute() as cursor:
            got = [next(cursor).name]
            got.extend(node.name for node in cursor.fetch(3))
            got.extend(node.name for node in cursor)
        assert got == expected

    def test_per_execute_batch_size_override(self, fig2):
        prepared = fig2.session().prepare("fig2", QUERY_MANY)
        expected = self._expected(fig2)
        for batch_size in (1, 2, 7, 512):
            with prepared.execute(batch_size=batch_size) as cursor:
                assert [n.name for n in cursor.fetchall()] == expected

    def test_batch_size_must_be_positive(self, fig2):
        with pytest.raises(ValueError):
            fig2.session(batch_size=0)
        prepared = fig2.session().prepare("fig2", QUERY_MANY)
        with pytest.raises(ValueError):
            prepared.execute(batch_size=-1)

    @pytest.mark.parametrize("profile", ["m3", "m4"])
    def test_interleaved_cursors_one_prepared_query(self, loaded,
                                                    profile):
        """Two cursors from one PreparedQuery, drained in alternating
        unequal fetches at different block sizes, both see the full
        result — batching never leaks state across executions."""
        query = ("for $a in //article return for $t in $a/title "
                 "return $t")
        expected = loaded.session(profile=profile).query("dblp", query)
        prepared = loaded.session(profile=profile).prepare("dblp", query)
        first = prepared.execute(batch_size=3)
        second = prepared.execute(batch_size=5)
        from_first, from_second = [], []
        while True:
            part_a = first.fetch(2)
            part_b = second.fetch(7)
            from_first.extend(part_a)
            from_second.extend(part_b)
            if not part_a and not part_b:
                break
        from repro.xmlkit.serializer import serialize

        assert "".join(serialize(n) for n in from_first) == expected
        assert "".join(serialize(n) for n in from_second) == expected

    def test_resource_limit_surfaces_on_fetch(self, loaded):
        """A budget tripped inside the pipeline propagates out of the
        cursor fetch, and the cursor still closes cleanly."""
        query = ("for $x in //author return for $y in //author "
                 "return <t/>")
        session = loaded.session(profile="m4", batch_size=64)
        prepared = session.prepare("dblp", query)
        cursor = prepared.execute(time_limit=0.0)
        with pytest.raises(ResourceLimitExceeded):
            cursor.fetch(1)
        cursor.close()


class TestExplainReportsBatchSize:
    def test_plan_root_carries_batch_size(self, fig2):
        report = fig2.session().explain("fig2", "//name")
        assert "batch=256" in str(report)
        for plan_explain in report.plans:
            assert plan_explain.plan.batch_size == DEFAULT_BATCH_SIZE
