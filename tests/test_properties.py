"""Property-based tests (hypothesis) on the core invariants.

* XML: serialize ∘ parse is the identity on generated trees;
* XASR: interval nesting invariants and full document reconstruction;
* B+-tree ≡ a sorted-dict model under random workloads;
* external sort ≡ ``sorted``;
* **engine equivalence**: random XQ queries over random documents give
  identical serialized results on the milestone-1 oracle, the
  navigational engine and the cost-based algebraic engine.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.storage.btree import BTree
from repro.storage.buffer import BufferPool
from repro.storage.pager import Pager
from repro.storage.record import decode_key, encode_key
from repro.xmlkit.dom import deep_equal
from repro.xmlkit.parser import parse
from repro.xmlkit.serializer import serialize

# ---------------------------------------------------------------------------
# generators
# ---------------------------------------------------------------------------

_LABELS = ["a", "b", "c", "item", "name"]
_TEXTS = ["x", "yy", "hello world", "42", "<&>"]


@st.composite
def xml_trees(draw, max_depth=4):
    """Serialized random element trees."""

    def element(depth):
        label = draw(st.sampled_from(_LABELS))
        if depth >= max_depth:
            children = []
        else:
            children = draw(st.lists(
                st.one_of(st.just("text"), st.just("elem")),
                max_size=3))
        parts = [f"<{label}>"]
        for kind in children:
            if kind == "text":
                text = draw(st.sampled_from(_TEXTS))
                escaped = (text.replace("&", "&amp;")
                           .replace("<", "&lt;").replace(">", "&gt;"))
                parts.append(escaped)
            else:
                parts.append(element(depth + 1))
        parts.append(f"</{label}>")
        return "".join(parts)

    return element(0)


@st.composite
def xq_queries(draw, depth=0):
    """Random well-typed XQ queries (comparisons only on text())."""
    choices = ["path", "for", "if", "constr", "empty"]
    if depth >= 3:
        choices = ["path", "empty"]
    kind = draw(st.sampled_from(choices))
    label = draw(st.sampled_from(_LABELS))
    axis = draw(st.sampled_from(["/", "//"]))
    variables = [f"v{level}" for level in range(depth)]
    base = f"${draw(st.sampled_from(variables))}" if variables else ""
    test = draw(st.sampled_from([label, "*", "text()"]))
    if kind == "empty":
        return "()"
    if kind == "path":
        return f"{base}{axis}{test}"
    if kind == "constr":
        inner = draw(xq_queries(depth=depth))
        return f"<w>{{ {inner} }}</w>"
    if kind == "for":
        body = draw(xq_queries(depth=depth + 1))
        elem_test = draw(st.sampled_from([label, "*", "text()"]))
        return (f"for $v{depth} in {base}{axis}{elem_test} "
                f"return {body}")
    # if — note: 'if' binds no variable, so the body stays at this depth.
    body = draw(xq_queries(depth=depth))
    literal = draw(st.sampled_from(_TEXTS[:4]))
    cond_kind = draw(st.sampled_from(["true", "some", "not-some"]))
    if cond_kind == "true":
        cond = "true()"
    else:
        source = f"{base}{axis}text()"
        inner_var = f"t{depth}"
        cond = (f"some ${inner_var} in {source} satisfies "
                f"${inner_var} = \"{literal}\"")
        if cond_kind == "not-some":
            cond = f"not({cond})"
    # 'if' needs a fresh binding level to stay interesting:
    return f"if ({cond}) then {body} else ()"


# ---------------------------------------------------------------------------
# XML round-trip
# ---------------------------------------------------------------------------


class TestXmlRoundTrip:
    @given(xml_trees())
    @settings(max_examples=60, deadline=None)
    def test_parse_serialize_parse_identity(self, text):
        tree = parse(text, strip_whitespace=False)
        assert deep_equal(parse(serialize(tree), strip_whitespace=False),
                          tree)


# ---------------------------------------------------------------------------
# key encoding
# ---------------------------------------------------------------------------


class TestKeyEncodingProperty:
    @given(st.lists(st.tuples(st.integers(0, 2**32 - 1),
                              st.text(max_size=8),
                              st.integers(0, 2**32 - 1)),
                    min_size=2, max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_byte_order_equals_tuple_order(self, tuples):
        schema = ("u32", "str", "u32")
        keys = [encode_key(t, schema) for t in tuples]
        by_bytes = [decode_key(k, schema) for k in sorted(keys)]
        assert by_bytes == sorted(tuples)


# ---------------------------------------------------------------------------
# B+-tree vs dict model
# ---------------------------------------------------------------------------


class TestBTreeModelProperty:
    @given(operations=st.lists(
        st.tuples(st.sampled_from(["insert", "lookup", "range"]),
                  st.integers(0, 300), st.integers(0, 300)),
        max_size=120))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_matches_dict_model(self, operations, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("bt") / "tree.db")
        pager = Pager(path, create=True, page_size=512)
        pool = BufferPool(pager, capacity=16)
        tree = BTree.create(pool)
        model = {}
        try:
            for op, low, high in operations:
                key = encode_key((low,))
                if op == "insert":
                    tree.insert(key, str(low).encode(), replace=True)
                    model[low] = str(low).encode()
                elif op == "lookup":
                    assert tree.search(key) == model.get(low)
                else:
                    low, high = min(low, high), max(low, high)
                    got = [decode_key(k, ("u32",))[0]
                           for k, __ in tree.range_scan(
                               encode_key((low,)), encode_key((high,)))]
                    expected = sorted(value for value in model
                                      if low <= value <= high)
                    assert got == expected
            assert len(tree) == len(model)
        finally:
            pager.close()


# ---------------------------------------------------------------------------
# XASR invariants
# ---------------------------------------------------------------------------


class TestXasrProperty:
    @given(text=xml_trees())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_interval_invariants_and_reconstruction(self, text,
                                                    tmp_path_factory):
        from repro.storage.db import Database
        from repro.xasr import StoredDocument, load_document

        path = str(tmp_path_factory.mktemp("xa") / "x.db")
        with Database.create(path) as db:
            load_document(db, "d", xml=text, strip_whitespace=False)
            doc = StoredDocument(db, "d")
            nodes = list(doc.scan())
            seen = set()
            for node in nodes:
                # in < out, all numbers distinct.
                assert node.in_ < node.out
                assert node.in_ not in seen and node.out not in seen
                seen.add(node.in_)
                seen.add(node.out)
            by_in = {node.in_: node for node in nodes}
            for node in nodes:
                if node.parent_in:
                    parent = by_in[node.parent_in]
                    assert parent.in_ < node.in_ < node.out < parent.out
            # Reconstruction round-trips.
            rebuilt = serialize(doc.to_document())
            assert rebuilt == serialize(parse(text,
                                              strip_whitespace=False))


# ---------------------------------------------------------------------------
# engine equivalence — the headline property
# ---------------------------------------------------------------------------


class TestCursorInterleavingProperty:
    """Interleaved ``Cursor.fetch(n)`` streams ≡ their serial runs.

    Several prepared queries (spread over two sessions with different
    profiles and a deliberately tiny batch size, so every cursor crosses
    many block boundaries) are opened at once; hypothesis drives the
    fetch schedule — which cursor, how many nodes — in random orders.
    Each cursor's concatenated output must equal the query's serial
    result, no matter how the pulls interleave.
    """

    #: (query text, needs external binding) — over the document below.
    QUERIES = [
        ("//name", False),
        ("//text()", False),
        ("for $j in //journal return <t>{ $j/title }</t>", False),
        ("for $n in //name return "
         "if (some $t in $n/text() satisfies $t = $w) "
         "then <hit>{ $n }</hit> else ()", True),
    ]
    BINDING_POOL = ["Ana", "Bob", "nobody"]
    DOCUMENT = ("<lib>" + "".join(
        f"<journal><authors><name>Ana</name><name>Bob</name>"
        f"<name>n{i}</name></authors><title>t{i}</title></journal>"
        for i in range(6)) + "</lib>")

    _dbms = None

    @classmethod
    def _shared_dbms(cls):
        # One read-only dbms reused across hypothesis examples (loads
        # are expensive; examples only vary the fetch schedule).
        if cls._dbms is None:
            import atexit
            import tempfile
            import os

            from repro.core.dbms import XmlDbms

            path = os.path.join(tempfile.mkdtemp("interleave"), "i.db")
            cls._dbms = XmlDbms(path, buffer_capacity=128)
            atexit.register(cls._dbms.close)
            cls._dbms.load("doc", xml=cls.DOCUMENT)
        return cls._dbms

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_interleaved_fetches_equal_serial(self, data):
        from repro.xmlkit.serializer import serialize

        dbms = self._shared_dbms()
        sessions = [dbms.session(batch_size=3),
                    dbms.session(profile="engine-2", batch_size=2)]
        picks = data.draw(
            st.lists(st.tuples(st.integers(0, len(sessions) - 1),
                               st.integers(0, len(self.QUERIES) - 1)),
                     min_size=2, max_size=4),
            label="cursors (session, query)")

        serial, cursors = [], []
        for session_index, query_index in picks:
            query, needs_binding = self.QUERIES[query_index]
            bindings = None
            if needs_binding:
                bindings = {"w": data.draw(
                    st.sampled_from(self.BINDING_POOL), label="binding")}
            session = sessions[session_index]
            serial.append(session.query("doc", query, bindings=bindings))
            cursors.append(session.prepare("doc", query)
                           .execute(bindings=bindings))

        collected = [[] for __ in cursors]
        live = set(range(len(cursors)))
        while live:
            index = data.draw(st.sampled_from(sorted(live)),
                              label="which cursor")
            nodes = cursors[index].fetch(
                data.draw(st.integers(1, 5), label="fetch size"))
            if nodes:
                collected[index].extend(nodes)
            else:
                live.discard(index)
        for cursor in cursors:
            cursor.close()

        for index, nodes in enumerate(collected):
            assert "".join(serialize(node) for node in nodes) \
                == serial[index], picks[index]


class TestEngineEquivalenceProperty:
    @given(document=xml_trees(), query=xq_queries())
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture,
                                     HealthCheck.too_slow])
    def test_all_engines_agree(self, document, query, tmp_path_factory):
        from repro.core.dbms import XmlDbms

        path = str(tmp_path_factory.mktemp("eq") / "eq.db")
        with XmlDbms(path, buffer_capacity=128) as dbms:
            dbms.load("d", xml=document)
            reference = dbms.query("d", query, profile="m1")
            for profile in ("m2", "m3", "m4", "engine-2", "engine-5"):
                assert dbms.query("d", query, profile=profile) == \
                    reference, (profile, query, document)


# ---------------------------------------------------------------------------
# value indexes under random update sequences
# ---------------------------------------------------------------------------

_VI_VALUES = ["a", "bee", "a", "zz", "m&m", "<x>", "same", "q" * 70]

_VI_BASE = ("<r><meta>seed</meta><flip>pivot</flip>"
            "<basket><item><name>a</name></item>"
            "<item><name>bee</name></item></basket></r>")

#: Every label that ever exists in the document gets a value index, so
#: the property exercises maintenance on indexed and re-labelled nodes.
_VI_LABELS = ("meta", "flip", "flop", "basket", "item", "name", "r")


@st.composite
def update_ops(draw):
    kind = draw(st.sampled_from(
        ["set_meta", "insert_first", "insert_last", "insert_text",
         "delete_items", "rename_flip"]))
    value = draw(st.sampled_from(_VI_VALUES))
    return kind, value


class TestValueIndexUpdateProperty:
    """After any random update sequence, every value index agrees
    exactly with a full rescan of its document — and ``drop_index``
    returns the tree's pages to the free list."""

    @staticmethod
    def _statement(kind: str, value: str, flip_label: str) -> str:
        escaped = value.replace("&", "&amp;").replace("<", "&lt;")
        quoted = value.replace('"', '""')
        if kind == "set_meta":
            return ('replace value of node /r/meta/text() '
                    f'with "{quoted}"')
        if kind == "insert_first":
            return (f'insert node <item><name>{escaped}</name></item> '
                    'as first into /r/basket')
        if kind == "insert_last":
            return (f'insert node <item><name>{escaped}</name></item> '
                    'as last into /r/basket')
        if kind == "insert_text":
            return f'insert node "{quoted}" as last into /r/basket'
        if kind == "delete_items":
            return 'delete nodes /r/basket/item'
        assert kind == "rename_flip"
        target = "flop" if flip_label == "flip" else "flip"
        return f'rename node /r/{flip_label} as {target}'

    @given(ops=st.lists(update_ops(), min_size=1, max_size=8))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture,
                                     HealthCheck.too_slow])
    def test_indexes_match_rescan_after_updates(self, ops,
                                                tmp_path_factory):
        from repro.core.dbms import XmlDbms
        from tests.test_value_index import assert_index_consistent

        path = str(tmp_path_factory.mktemp("vi") / "vi.db")
        with XmlDbms(path, buffer_capacity=512) as dbms:
            dbms.load("d", xml=_VI_BASE)
            for label in _VI_LABELS:
                dbms.create_index("d", label)
            flip_label = "flip"
            for kind, value in ops:
                dbms.update("d", self._statement(kind, value, flip_label))
                if kind == "rename_flip":
                    flip_label = ("flop" if flip_label == "flip"
                                  else "flip")
                assert_index_consistent(dbms, "d")
            free_before = dbms.db.pager.free_page_count()
            dbms.drop_index("d", "name")
            assert dbms.db.pager.free_page_count() > free_before
