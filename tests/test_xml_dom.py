"""Tests for the DOM, the DOM parser and the serializer."""


from repro.xmlkit.dom import Document, Element, NodeKind, Text, deep_equal
from repro.xmlkit.parser import parse
from repro.xmlkit.serializer import escape_attribute, escape_text, serialize


class TestParse:
    def test_root_element(self):
        doc = parse("<journal/>")
        assert doc.root_element.name == "journal"

    def test_children_in_order(self):
        doc = parse("<a><b/><c/><d/></a>")
        names = [child.name for child in doc.root_element.children]
        assert names == ["b", "c", "d"]

    def test_text_nodes(self):
        doc = parse("<a>hi</a>")
        (text,) = doc.root_element.children
        assert isinstance(text, Text)
        assert text.text == "hi"

    def test_whitespace_stripped_by_default(self):
        doc = parse("<a>\n  <b/>\n</a>")
        assert len(doc.root_element.children) == 1

    def test_whitespace_preserved_on_request(self):
        doc = parse("<a> <b/> </a>", strip_whitespace=False)
        kinds = [child.kind for child in doc.root_element.children]
        assert kinds == [NodeKind.TEXT, NodeKind.ELEMENT, NodeKind.TEXT]

    def test_parent_links(self):
        doc = parse("<a><b><c/></b></a>")
        c = doc.root_element.children[0].children[0]
        assert c.parent.name == "b"
        assert c.parent.parent.name == "a"

    def test_attributes_survive(self):
        doc = parse('<a key="v"/>')
        assert doc.root_element.attributes == (("key", "v"),)


class TestNavigation:
    def setup_method(self):
        self.doc = parse(
            "<journal><authors><name>Ana</name><name>Bob</name>"
            "</authors><title>DB</title></journal>")

    def test_iter_children(self):
        journal = self.doc.root_element
        labels = [child.label for child in journal.iter_children()]
        assert labels == ["authors", "title"]

    def test_iter_descendants_document_order(self):
        labels = [node.label
                  for node in self.doc.root_element.iter_descendants()]
        assert labels == ["authors", "name", "Ana", "name", "Bob",
                          "title", "DB"]

    def test_iter_self_and_descendants(self):
        nodes = list(self.doc.root_element.iter_self_and_descendants())
        assert nodes[0] is self.doc.root_element
        assert len(nodes) == 8

    def test_string_value_concatenates_in_order(self):
        assert self.doc.root_element.string_value() == "AnaBobDB"

    def test_text_node_string_value(self):
        assert Text("x").string_value() == "x"

    def test_kind_predicates(self):
        assert Element("a").is_element()
        assert not Element("a").is_text()
        assert Text("x").is_text()

    def test_labels(self):
        assert Element("a").label == "a"
        assert Text("x").label == "x"
        assert Document().label is None


class TestDeepEqual:
    def test_equal_trees(self):
        assert deep_equal(parse("<a><b>x</b></a>"), parse("<a><b>x</b></a>"))

    def test_different_label(self):
        assert not deep_equal(parse("<a/>"), parse("<b/>"))

    def test_different_text(self):
        assert not deep_equal(parse("<a>x</a>"), parse("<a>y</a>"))

    def test_different_child_count(self):
        assert not deep_equal(parse("<a><b/></a>"), parse("<a><b/><b/></a>"))

    def test_different_child_order(self):
        assert not deep_equal(parse("<a><b/><c/></a>"),
                              parse("<a><c/><b/></a>"))


class TestSerialize:
    def test_compact_round_trip(self):
        text = "<a><b>x</b><c/><d>y&amp;z</d></a>"
        assert serialize(parse(text)) == text

    def test_empty_element_self_closes(self):
        assert serialize(parse("<a></a>")) == "<a/>"

    def test_attributes_rendered(self):
        assert serialize(parse('<a k="v"/>')) == '<a k="v"/>'

    def test_text_escaping(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_attribute_escaping_quotes(self):
        assert escape_attribute('say "hi"') == "say &quot;hi&quot;"

    def test_pretty_print_indents(self):
        pretty = serialize(parse("<a><b>x</b></a>"), indent=2)
        assert pretty == "<a>\n  <b>x</b>\n</a>\n"

    def test_serialize_parse_fixpoint(self):
        text = ("<dblp><article><author>A &amp; B</author>"
                "<title>T</title></article></dblp>")
        once = serialize(parse(text))
        assert serialize(parse(once)) == once
