"""Milestone-1 evaluator semantics (the oracle itself)."""

import pytest

from repro.errors import XQEvalError, XQTypeError
from repro.xmlkit.parser import parse
from repro.xq.eval_memory import evaluate, serialize_result
from repro.xq.parser import parse_query

JOURNAL = ("<journal><authors><name>Ana</name><name>Bob</name>"
           "</authors><title>DB</title></journal>")


def run(query, xml=JOURNAL):
    return serialize_result(evaluate(parse_query(query), parse(xml)))


class TestQueryForms:
    def test_empty(self):
        assert run("()") == ""

    def test_absolute_child(self):
        assert run("/journal/title") == "<title>DB</title>"

    def test_descendant(self):
        assert run("//name") == "<name>Ana</name><name>Bob</name>"

    def test_variable_outputs_subtree(self):
        assert run("for $a in /journal/authors return $a") == \
            "<authors><name>Ana</name><name>Bob</name></authors>"

    def test_text_test(self):
        assert run("//name/text()") == "AnaBob"

    def test_wildcard(self):
        assert run("/journal/*") == \
            ("<authors><name>Ana</name><name>Bob</name></authors>"
             "<title>DB</title>")

    def test_construction_copies(self):
        assert run("<out>{ //title }</out>") == \
            "<out><title>DB</title></out>"

    def test_construction_literal_text(self):
        assert run("<a>hi</a>") == "<a>hi</a>"

    def test_empty_construction(self):
        assert run("<a/>") == "<a/>"

    def test_sequence_order(self):
        assert run("//title, //name") == \
            "<title>DB</title><name>Ana</name><name>Bob</name>"

    def test_nested_for_document_order(self):
        assert run("for $j in /journal return "
                   "for $n in $j//name return $n") == \
            "<name>Ana</name><name>Bob</name>"

    def test_for_over_empty_source(self):
        assert run("for $x in //nothing return <y/>") == ""

    def test_if_true(self):
        assert run("if (true()) then <t/>") == "<t/>"

    def test_if_false_yields_empty(self):
        assert run("for $n in //name return "
                   "if (some $t in $n/text() satisfies $t = \"Zoe\") "
                   "then $n else ()") == ""


class TestConditions:
    def test_var_eq_const_true(self):
        assert run("for $t in //name/text() return "
                   "if ($t = \"Ana\") then <hit/> else ()") == "<hit/>"

    def test_var_eq_var(self):
        query = ("for $s in //name/text() return "
                 "for $t in //name/text() return "
                 "if ($s = $t) then <eq/> else ()")
        assert run(query) == "<eq/><eq/>"  # Ana=Ana, Bob=Bob

    def test_some_descendant(self):
        assert run("if (some $t in //journal satisfies true()) "
                   "then <found/>") == "<found/>"

    def test_some_is_existential(self):
        # One witness is enough; no duplicates from multiple matches.
        assert run("for $a in /journal/authors return "
                   "if (some $n in $a/name satisfies true()) "
                   "then <yes/> else ()") == "<yes/>"

    def test_and_or_not(self):
        assert run("if (true() and not(true())) then <a/>") == ""
        assert run("if (true() or not(true())) then <a/>") == "<a/>"

    def test_nested_some(self):
        query = ("if (some $n in //name satisfies "
                  "some $t in $n/text() satisfies $t = \"Bob\") "
                  "then <bob/>")
        assert run(query) == "<bob/>"


class TestTypingRules:
    """The paper's restriction: comparisons require text-node bindings."""

    def test_element_comparison_raises(self):
        query = ("for $n in //name return "
                 "if ($n = \"Ana\") then $n else ()")
        with pytest.raises(XQTypeError):
            run(query)

    def test_element_to_element_comparison_raises(self):
        query = ("for $a in //name return for $b in //name return "
                 "if ($a = $b) then <x/> else ()")
        with pytest.raises(XQTypeError):
            run(query)

    def test_unbound_variable_raises(self):
        with pytest.raises(XQEvalError):
            run("$nosuch")

    def test_comparison_not_reached_when_source_empty(self):
        # 'some' never binds, so the ill-typed comparison never runs.
        query = ("for $n in //name return "
                 "if (some $t in $n/nothing satisfies $t = \"x\") "
                 "then $n else ()")
        assert run(query) == ""


class TestConstructionSemantics:
    def test_constructed_nodes_are_copies(self):
        document = parse(JOURNAL)
        result = evaluate(parse_query("<w>{ //title }</w>"), document)
        copied_title = result[0].children[0]
        original_title = document.root_element.children[1]
        assert copied_title is not original_title
        assert copied_title.name == original_title.name

    def test_navigation_into_constructed_content_not_supported(self):
        # Composition-freeness: queries navigate the *input* document
        # only; a for over a constructed variable is simply not
        # expressible because 'for' sources are paths from variables
        # bound to input nodes.  Binding a constructed node and stepping
        # from it still works mechanically (it is a node), which is the
        # expected generalization.
        assert run("for $x in /journal return <a>{ $x/title }</a>") == \
            "<a><title>DB</title></a>"

    def test_strict_merge_example_constructs_empty_elements(self):
        # The paper's example: journals without children must still
        # produce empty <j/> elements.
        xml = "<lib><journal><name>X</name></journal><journal/></lib>"
        query = ("for $j in //journal return "
                 "<j>{ for $n in $j//name return $n }</j>")
        assert run(query, xml) == "<j><name>X</name></j><j/>"
