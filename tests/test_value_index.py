"""Secondary value indexes: API, planner integration, maintenance.

Covers the ``XmlDbms.create_index``/``drop_index`` lifecycle, the
``(value, elem_in, text_in)`` index structure, ``ValueIndexScan`` plan
selection and execution (equality, range, correlated probe), exact
incremental maintenance under every update kind, histogram estimates,
and page reclamation on ``drop_index``.
"""

from __future__ import annotations

import pytest

from repro.core.dbms import XmlDbms
from repro.errors import CatalogError
from repro.optimizer.planner import PlannerConfig
from repro.optimizer.stats import CardinalityEstimator
from repro.physical.context import Bindings, ExecutionContext
from repro.physical.operators import ValueIndexScan
from repro.workloads.dblp import DblpConfig, generate_dblp
from repro.xasr import schema
from repro.xasr.document import StoredDocument
from repro.xasr.loader import EquiDepthHistogram

SMALL_XML = ("<r>"
             "<item><name>ada</name><tag>t1</tag></item>"
             "<item><name>bob</name></item>"
             "<item><name>ada</name><name>cyd</name></item>"
             "<other><name>ada</name></other>"
             "<note>ada</note>"
             "</r>")

#: A DBLP sizing where value-index plans clearly win on cost: a shared
#: name pool makes editor names common document-wide but rare under
#: <editor>.
CONTRAST_DBLP = DblpConfig(articles=120, inproceedings=40, name_pool=8,
                           editors=20)


def rescan_entries(doc: StoredDocument, label: str):
    """Ground truth: every (truncated value, elem_in, text_in) triple a
    full rescan of the document finds for ``label``."""
    found = []
    for node in doc.scan():
        if node.is_element and node.value == label:
            for child in doc.children(node.in_):
                if child.is_text:
                    found.append((schema.index_value(child.value),
                                  node.in_, child.in_))
    return sorted(found)


def index_entries(doc: StoredDocument, label: str):
    tree = doc.value_indexes[label]
    return sorted(schema.decode_value_key(key) for key, __ in tree.items())


def assert_index_consistent(dbms: XmlDbms, document: str):
    doc = StoredDocument(dbms.db, document)
    for label in doc.value_index_labels:
        assert index_entries(doc, label) == rescan_entries(doc, label), \
            f"value index on {label!r} diverged from rescan"


class TestIndexLifecycle:
    def test_create_list_drop(self, dbms):
        dbms.load("d", xml=SMALL_XML)
        assert dbms.indexes("d") == []
        dbms.create_index("d", "item")
        dbms.create_index("d", "other")
        assert dbms.indexes("d") == ["item", "other"]
        dbms.drop_index("d", "item")
        assert dbms.indexes("d") == ["other"]

    def test_session_surface(self, dbms):
        dbms.load("d", xml=SMALL_XML)
        session = dbms.session()
        session.create_index("d", "item")
        assert session.indexes("d") == ["item"]
        session.drop_index("d", "item")
        assert session.indexes("d") == []

    def test_create_on_missing_document(self, dbms):
        with pytest.raises(CatalogError):
            dbms.create_index("nope", "item")

    def test_duplicate_create_rejected(self, dbms):
        dbms.load("d", xml=SMALL_XML)
        dbms.create_index("d", "item")
        with pytest.raises(CatalogError):
            dbms.create_index("d", "item")

    def test_drop_missing_index_rejected(self, dbms):
        dbms.load("d", xml=SMALL_XML)
        with pytest.raises(CatalogError):
            dbms.drop_index("d", "item")

    def test_index_on_absent_label_is_empty(self, dbms):
        dbms.load("d", xml=SMALL_XML)
        dbms.create_index("d", "phantom")
        doc = StoredDocument(dbms.db, "d")
        assert index_entries(doc, "phantom") == []

    def test_persists_across_reopen(self, tmp_path):
        path = str(tmp_path / "v.db")
        with XmlDbms(path) as dbms:
            dbms.load("d", xml=SMALL_XML)
            dbms.create_index("d", "item")
        with XmlDbms(path) as dbms:
            assert dbms.indexes("d") == ["item"]
            assert_index_consistent(dbms, "d")

    def test_reload_drops_indexes(self, dbms):
        dbms.load("d", xml=SMALL_XML)
        dbms.create_index("d", "item")
        dbms.load("d", xml="<r><item><name>zz</name></item></r>")
        assert dbms.indexes("d") == []

    def test_drop_document_removes_index_objects(self, dbms):
        dbms.load("d", xml=SMALL_XML)
        dbms.create_index("d", "item")
        dbms.drop("d")
        assert not dbms.db.exists(schema.value_index_name("d", "item"))
        assert dbms.db.get_meta(
            schema.value_index_catalog_name("d")) is None

    def test_drop_index_frees_pages(self, dbms):
        dbms.load("d", xml=generate_dblp(DblpConfig(
            articles=40, inproceedings=10)))
        dbms.create_index("d", "author")
        pages_after_build = dbms.db.pager.num_pages
        free_before = dbms.db.pager.free_page_count()
        dbms.drop_index("d", "author")
        # The tree's pages are all on the free list now...
        assert dbms.db.pager.free_page_count() > free_before
        # ...and a rebuild reuses them instead of growing the file
        # (small slack for catalog-page churn).
        dbms.create_index("d", "author")
        assert dbms.db.pager.num_pages <= pages_after_build + 4

    def test_build_matches_rescan(self, dbms):
        dbms.load("d", xml=SMALL_XML)
        dbms.create_index("d", "name")
        assert_index_consistent(dbms, "d")
        doc = StoredDocument(dbms.db, "d")
        # One entry per child text node of a <name> element — including
        # <other>'s name, but not the <tag> or <note> texts (different
        # labels) and nothing for <item> (no direct text children).
        values = [value for value, __, __ in index_entries(doc, "name")]
        assert values == ["ada", "ada", "ada", "bob", "cyd"]
        dbms.create_index("d", "item")
        assert index_entries(StoredDocument(dbms.db, "d"), "item") == []


class TestValueIndexScanOperator:
    @pytest.fixture
    def doc(self, dbms):
        dbms.load("d", xml=SMALL_XML)
        dbms.create_index("d", "name")
        return StoredDocument(dbms.db, "d")

    def run(self, doc, op):
        ctx = ExecutionContext(doc)
        return [row[0].value for row in op.execute(
            ctx, Bindings({"#root": doc.root()}))]

    def test_equality(self, doc):
        from repro.algebra.ra import Const

        op = ValueIndexScan("T", "name", Const("ada"), Const("ada"),
                            True, True, [])
        assert self.run(doc, op) == ["ada", "ada", "ada"]

    def test_range(self, doc):
        from repro.algebra.ra import Const

        op = ValueIndexScan("T", "name", Const("ada"), Const("cyd"),
                            False, False, [])
        assert self.run(doc, op) == ["bob"]

    def test_open_bounds(self, doc):
        from repro.algebra.ra import Const

        low = ValueIndexScan("T", "name", Const("b"), None, False, False,
                             [])
        assert self.run(doc, low) == ["bob", "cyd"]
        high = ValueIndexScan("T", "name", None, Const("b"), False, False,
                              [])
        assert self.run(doc, high) == ["ada", "ada", "ada"]

    def test_document_order(self, doc):
        from repro.algebra.ra import Const

        op = ValueIndexScan("T", "name", None, None, False, False, [])
        ctx = ExecutionContext(doc)
        ins = [row[0].in_ for row in op.execute(
            ctx, Bindings({"#root": doc.root()}))]
        assert ins == sorted(ins)

    def test_explain_mentions_label_and_bounds(self, doc):
        from repro.algebra.ra import Const

        op = ValueIndexScan("T", "name", Const("a"), Const("b"),
                            False, False, [])
        text = op.explain()
        assert "ValueIndexScan" in text and "'name'" in text
        assert "'a'" in text and "'b'" in text

    def test_truncated_values_verified_exactly(self, dbms):
        prefix = "p" * schema.VALUE_INDEX_PREFIX
        xml = (f"<r><item><name>{prefix}aa</name></item>"
               f"<item><name>{prefix}zz</name></item></r>")
        dbms.load("d", xml=xml)
        dbms.create_index("d", "name")
        doc = StoredDocument(dbms.db, "d")
        hits = doc.value_index_matches("name", low=prefix + "aa",
                                       high=prefix + "aa",
                                       low_inclusive=True,
                                       high_inclusive=True)
        assert len(hits) == 1
        assert doc.node(hits[0]).value == prefix + "aa"

    def test_overflow_values_indexed_by_prefix(self, dbms):
        big = "v" * (schema.VALUE_INLINE_MAX + 100)
        dbms.load("d", xml=f"<r><item><name>{big}</name></item></r>")
        dbms.create_index("d", "name")
        doc = StoredDocument(dbms.db, "d")
        hits = doc.value_index_matches("name", low=big, high=big,
                                       low_inclusive=True,
                                       high_inclusive=True)
        assert len(hits) == 1
        assert doc.node(hits[0]).value == big


class TestPlannerPicksValueIndex:
    @pytest.fixture
    def contrast(self, tmp_path):
        with XmlDbms(str(tmp_path / "c.db"), buffer_capacity=2048) as dbms:
            dbms.load("dblp", xml=generate_dblp(CONTRAST_DBLP))
            yield dbms

    @staticmethod
    def eq_query(name):
        return (f'for $e in //editor return '
                f'if (some $t in $e/text() satisfies $t = "{name}") '
                f'then $e else ()')

    @staticmethod
    def range_query(low, high):
        return (f'for $e in //editor return '
                f'if (some $t in $e/text() satisfies '
                f'($t > "{low}" and $t < "{high}")) then $e else ()')

    def test_equality_plan_uses_value_index(self, contrast):
        name = contrast.execute("dblp", "//editor/text()")[0].text
        query = self.eq_query(name)
        assert "ValueIndexScan" not in contrast.explain("dblp", query)
        contrast.create_index("dblp", "editor")
        assert "ValueIndexScan" in contrast.explain("dblp", query)

    def test_range_plan_uses_value_index(self, contrast):
        name = contrast.execute("dblp", "//editor/text()")[0].text
        query = self.range_query(name[0], name[0] + "￿")
        assert "ValueIndexScan" not in contrast.explain("dblp", query)
        contrast.create_index("dblp", "editor")
        assert "ValueIndexScan" in contrast.explain("dblp", query)

    def test_results_identical_with_index(self, contrast):
        name = contrast.execute("dblp", "//editor/text()")[0].text
        queries = [self.eq_query(name),
                   self.range_query(name[0], name[0] + "￿")]
        before = [contrast.query("dblp", q) for q in queries]
        contrast.create_index("dblp", "editor")
        for query, expected in zip(queries, before, strict=True):
            assert contrast.query("dblp", query) == expected
            assert contrast.query("dblp", query, profile="m1") == expected

    def test_disabled_by_config(self, contrast):
        from repro.engine.algebraic import AlgebraicEvaluator
        from repro.xq.parser import parse_query

        contrast.create_index("dblp", "editor")
        name = contrast.execute("dblp", "//editor/text()")[0].text
        doc = StoredDocument(contrast.db, "dblp")
        off = AlgebraicEvaluator(doc,
                                 config=PlannerConfig(use_value_index=False))
        text = off.explain(parse_query(self.eq_query(name)))
        assert "ValueIndexScan" not in text

    def test_drop_index_replans(self, contrast):
        name = contrast.execute("dblp", "//editor/text()")[0].text
        query = self.eq_query(name)
        contrast.create_index("dblp", "editor")
        expected = contrast.query("dblp", query)
        assert "ValueIndexScan" in contrast.explain("dblp", query)
        contrast.drop_index("dblp", "editor")
        assert "ValueIndexScan" not in contrast.explain("dblp", query)
        assert contrast.query("dblp", query) == expected

    def test_value_join_probe_still_correct(self, contrast):
        """A value join against the indexed label (dynamic probe)."""
        query = ('for $t1 in //editor/text() return '
                 'for $t2 in //author/text() return '
                 'if ($t1 = $t2) then <m/> else ()')
        before = contrast.query("dblp", query)
        contrast.create_index("dblp", "editor")
        assert contrast.query("dblp", query) == before


class TestMaintenanceUnderUpdates:
    @pytest.fixture
    def indexed(self, dbms):
        dbms.load("d", xml=SMALL_XML)
        dbms.create_index("d", "item")
        dbms.create_index("d", "name")
        dbms.create_index("d", "other")
        return dbms

    def test_replace_value(self, indexed):
        indexed.update(
            "d", 'replace value of node /r/other/name/text() with "zed"')
        assert_index_consistent(indexed, "d")
        doc = StoredDocument(indexed.db, "d")
        assert [v for v, __, __ in index_entries(doc, "name")] \
            == sorted(["ada", "bob", "ada", "cyd", "zed"])

    def test_insert_subtree(self, indexed):
        indexed.update(
            "d", 'insert node <item><name>aaa</name></item> '
                 'as first into /r')
        assert_index_consistent(indexed, "d")

    def test_insert_before_shifts_entries(self, indexed):
        indexed.update(
            "d", 'insert node <item><name>mid</name></item> '
                 'before /r/other')
        assert_index_consistent(indexed, "d")

    def test_delete_subtree(self, indexed):
        indexed.update("d", 'delete nodes /r/item')
        assert_index_consistent(indexed, "d")
        doc = StoredDocument(indexed.db, "d")
        assert index_entries(doc, "item") == []
        assert [v for v, __, __ in index_entries(doc, "name")] == ["ada"]

    def test_rename_moves_entries_between_indexes(self, indexed):
        indexed.update("d", 'rename node /r/other as item')
        assert_index_consistent(indexed, "d")

    def test_mixed_statement(self, indexed):
        indexed.update(
            "d",
            'insert node <item><name>new</name></item> as last into /r, '
            'delete node /r/item/tag')
        assert_index_consistent(indexed, "d")

    def test_update_then_query_uses_fresh_index(self, indexed):
        indexed.update(
            "d", 'replace value of node /r/other/name/text() with "qqq"')
        hits = indexed.execute(
            "d", 'for $o in //other return '
                 'if (some $t in $o/name/text() satisfies $t = "qqq") '
                 'then $o else ()')
        assert len(hits) == 1

    def test_survives_reopen_after_updates(self, tmp_path):
        path = str(tmp_path / "m.db")
        with XmlDbms(path) as dbms:
            dbms.load("d", xml=SMALL_XML)
            dbms.create_index("d", "item")
            dbms.update("d", 'insert node <item><name>pp</name></item> '
                             'as last into /r')
        with XmlDbms(path) as dbms:
            assert_index_consistent(dbms, "d")


class TestHistograms:
    def test_build_eq_estimates(self):
        histogram = EquiDepthHistogram.build(
            ["a"] * 10 + ["b"] * 5 + ["c"] * 1, buckets=4)
        assert histogram.total == 16
        assert histogram.estimate_eq("a") == pytest.approx(10.0)
        assert histogram.estimate_eq("zz") == 0.0

    def test_range_estimate_bounded_by_total(self):
        histogram = EquiDepthHistogram.build(
            [f"v{i:03d}" for i in range(100)], buckets=8)
        assert histogram.estimate_range(None, None) \
            == pytest.approx(100.0)
        narrow = histogram.estimate_range("v010", "v020")
        assert 0.0 < narrow < 40.0

    def test_add_remove_shift_counts(self):
        histogram = EquiDepthHistogram.build(["a", "b", "c"], buckets=2)
        histogram.add("b")
        assert histogram.total == 4
        histogram.remove("b")
        histogram.remove("b")
        assert histogram.total == 2

    def test_payload_round_trip(self):
        histogram = EquiDepthHistogram.build(["x", "y", "y"], buckets=2)
        clone = EquiDepthHistogram.from_payload(histogram.to_payload())
        assert clone == histogram

    def test_mcv_exact_for_hot_value_among_singletons(self):
        """A frequent value sharing its bucket with many unique strings
        must not be averaged away — the most-common-values list answers
        it exactly (the underestimate once flipped plans away from the
        value index)."""
        values = ["hot name"] * 50 + [f"unique title {i:04d}"
                                      for i in range(500)]
        histogram = EquiDepthHistogram.build(values, buckets=4)
        assert histogram.estimate_eq("hot name") == pytest.approx(50.0)
        histogram.remove("hot name")
        histogram.add("hot name")
        histogram.add("hot name")
        assert histogram.estimate_eq("hot name") == pytest.approx(51.0)

    def test_statistics_carry_histograms(self, dbms):
        dbms.load("d", xml=SMALL_XML)
        stats = dbms.statistics("d")
        assert "" in stats.value_histograms        # document-wide
        assert "name" in stats.value_histograms    # per label
        assert stats.value_histograms["name"].total == 5
        assert stats.value_histograms[""].total == stats.text_count

    def test_estimator_uses_global_histogram(self, dbms):
        dbms.load("d", xml=SMALL_XML)
        estimator = CardinalityEstimator(dbms.statistics("d"))
        assert estimator.text_eq_cardinality("ada") == pytest.approx(4.0)

    def test_estimator_uses_label_histogram(self, dbms):
        dbms.load("d", xml=SMALL_XML)
        estimator = CardinalityEstimator(dbms.statistics("d"))
        # "ada" appears four times document-wide but thrice under name.
        assert estimator.label_text_cardinality("name", value="ada") \
            == pytest.approx(3.0)

    def test_histograms_maintained_by_updates(self, dbms):
        dbms.load("d", xml=SMALL_XML)
        dbms.update("d", 'delete nodes /r/item')
        stats = dbms.statistics("d")
        assert stats.value_histograms[""].total == stats.text_count

    def test_degraded_calibrations_ignore_histograms(self, dbms):
        dbms.load("d", xml=SMALL_XML)
        stats = dbms.statistics("d")
        pessimistic = CardinalityEstimator(stats, "pessimistic-text")
        assert pessimistic.text_eq_cardinality("ada") \
            == pytest.approx(stats.text_count)
