"""MVCC snapshot isolation, proven differentially.

Three instruments:

* **Differential stress** — N reader threads iterate queries under
  snapshot tickets while M writer threads apply random XQUF updates.
  Every reader result must be byte-identical to a *serial replay* of the
  committed update history truncated at the reader's pinned snapshot
  LSN, with :func:`repro.updates.memory.apply_to_dom` as the oracle — a
  reader that observes a torn update, a half-applied index maintenance
  step, or a commit newer than its pin diverges from the replay.

* **Hypothesis property** — random interleavings of page-level commits,
  snapshot pins and frees at the buffer-pool layer: each snapshot sees
  exactly the prefix of commits with LSN <= its pin, and reclamation
  never frees a page any pinned snapshot can still reach (asserted
  against ``Pager.free_page_count``).

* **Group commit** — concurrent writers against a deliberately slow
  fsync must share fsyncs (``fsyncs_saved > 0``) while every commit
  remains individually durable and readers stay consistent throughout.
"""

from __future__ import annotations

import os
import random
import tempfile
import threading
import time

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dbms import XmlDbms
from repro.storage.db import Database
from repro.updates.memory import apply_to_dom
from repro.xmlkit.parser import parse as parse_document
from repro.xmlkit.serializer import serialize
from repro.xq.parser import parse_program

BASE_XML = "<log><meta>start</meta></log>"
JOIN_TIMEOUT = 120.0


def run_threads(workers: list[threading.Thread],
                errors: list[BaseException]) -> None:
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=JOIN_TIMEOUT)
        assert not worker.is_alive(), "worker timed out (deadlock?)"
    assert not errors, errors[0]


# ---------------------------------------------------------------------------
# differential stress: readers vs. serial replay at their snapshot LSN
# ---------------------------------------------------------------------------


class TestSnapshotDifferentialStress:
    """Concurrent readers each equal a serial replay at their pin."""

    WRITERS = 3
    UPDATES_PER_WRITER = 24
    READERS = 4

    def _writer_statements(self, tid: int,
                           rng: random.Random) -> list[str]:
        """A reproducible single-writer program over its own elements.

        Each writer only ever touches elements it inserted itself
        (names prefixed ``w{tid}``), so cross-thread interleavings
        cannot invalidate each other's target paths — the history
        replays deterministically in commit-LSN order.
        """
        statements = []
        live: list[str] = []
        for k in range(self.UPDATES_PER_WRITER):
            name = f"w{tid}x{k}"
            choice = rng.random()
            if live and choice < 0.20:
                victim = live.pop(rng.randrange(len(live)))
                statements.append(f"delete node /log/{victim}")
            elif live and choice < 0.40:
                target = rng.choice(live)
                statements.append(f"replace value of node /log/{target}"
                                  f'/text() with "{name}"')
            elif live and choice < 0.50:
                old = live.pop(rng.randrange(len(live)))
                renamed = f"w{tid}r{k}"
                statements.append(f"rename node /log/{old} as {renamed}")
                live.append(renamed)
            else:
                statements.append(f"insert node <{name}>{k}</{name}> "
                                  f"as last into /log")
                live.append(name)
        return statements

    def test_readers_equal_serial_replay_at_pinned_lsn(self, tmp_path):
        dbms = XmlDbms(str(tmp_path / "mvcc.db"), buffer_capacity=512)
        dbms.load("log", xml=BASE_XML)
        history: list[tuple[int, str]] = []
        history_lock = threading.Lock()
        observations: list[tuple[int, str]] = []
        obs_lock = threading.Lock()
        errors: list[BaseException] = []
        writers_done = threading.Event()
        remaining = [self.WRITERS]

        def writer(tid: int) -> None:
            try:
                rng = random.Random(1000 + tid)
                for statement in self._writer_statements(tid, rng):
                    result = dbms.update("log", statement)
                    assert result.commit_lsn > 0
                    with history_lock:
                        history.append((result.commit_lsn, statement))
            except BaseException as exc:  # noqa: BLE001 — surfaced by join
                errors.append(exc)
            finally:
                with history_lock:
                    remaining[0] -= 1
                    if remaining[0] == 0:
                        writers_done.set()

        def reader(tid: int) -> None:
            try:
                session = dbms.session()
                while True:
                    done_before = writers_done.is_set()
                    with dbms.read_ticket("log") as ticket:
                        text = session.query("log", "/log")
                        again = session.query("log", "/log")
                        # Repeatable read: one ticket, one state —
                        # regardless of commits landing in between.
                        assert text == again, \
                            f"ticket at lsn {ticket.snapshot_lsn} unstable"
                        with obs_lock:
                            observations.append(
                                (ticket.snapshot_lsn, text))
                    if done_before:
                        return
                    time.sleep(0.002 * tid)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        run_threads(
            [threading.Thread(target=writer, args=(tid,), daemon=True)
             for tid in range(self.WRITERS)]
            + [threading.Thread(target=reader, args=(tid,), daemon=True)
               for tid in range(self.READERS)],
            errors)

        assert len(history) == self.WRITERS * self.UPDATES_PER_WRITER
        lsns = [lsn for lsn, __ in history]
        assert len(set(lsns)) == len(lsns), "commit LSNs must be unique"
        ordered = sorted(history)

        # Serial replay oracle: for each observed snapshot LSN, apply
        # exactly the commits with LSN <= pin, in LSN order, to a DOM.
        replay_cache: dict[int, str] = {}

        def replay(pin_lsn: int) -> str:
            cached = replay_cache.get(pin_lsn)
            if cached is not None:
                return cached
            dom = parse_document(BASE_XML)
            for lsn, statement in ordered:
                if lsn > pin_lsn:
                    break
                apply_to_dom(dom, parse_program(statement).body)
            text = serialize(dom.root_element)
            replay_cache[pin_lsn] = text
            return text

        assert observations
        for pin_lsn, text in observations:
            assert text == replay(pin_lsn), \
                f"snapshot at lsn {pin_lsn} diverged from serial replay"

        stats = dbms.mvcc_stats()
        assert stats["snapshots_pinned"] == 0
        assert stats["snapshots_opened"] >= len(observations)
        # The stress only proves anything if readers genuinely hit the
        # version store (live-only reads would pass trivially).
        assert stats["versioned_reads"] > 0
        assert stats["group_commits"] == len(history)
        dbms.close()

    def test_streaming_cursors_equal_serial_replay_at_pinned_lsn(
            self, tmp_path):
        """The QueryServer streaming path: a cursor's *whole* result —
        first page to last — comes from the snapshot pinned at
        submission, no matter how many commits land mid-stream."""
        from repro.core import QueryServer

        dbms = XmlDbms(str(tmp_path / "stream.db"), buffer_capacity=512)
        dbms.load("log", xml=BASE_XML)
        server = QueryServer(dbms, workers=6)
        history: list[tuple[int, str]] = []
        history_lock = threading.Lock()
        observations: list[tuple[int, str]] = []
        obs_lock = threading.Lock()
        errors: list[BaseException] = []
        writers_done = threading.Event()
        writers = 2
        remaining = [writers]

        def writer(tid: int) -> None:
            try:
                rng = random.Random(2000 + tid)
                for statement in self._writer_statements(tid, rng):
                    result = dbms.update("log", statement)
                    with history_lock:
                        history.append((result.commit_lsn, statement))
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                with history_lock:
                    remaining[0] -= 1
                    if remaining[0] == 0:
                        writers_done.set()

        def reader(tid: int) -> None:
            try:
                while True:
                    done_before = writers_done.is_set()
                    stream = server.submit_stream(
                        "log", "/log/*", serialize=True, page_size=3)
                    rows: list[str] = []
                    for page in stream.pages():
                        rows.extend(page)
                        # Stall between pages so commits land while the
                        # cursor is mid-stream.
                        time.sleep(0.001)
                    assert stream.snapshot_lsn is not None
                    with obs_lock:
                        observations.append(
                            (stream.snapshot_lsn, "".join(rows)))
                    if done_before:
                        return
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        run_threads(
            [threading.Thread(target=writer, args=(tid,), daemon=True)
             for tid in range(writers)]
            + [threading.Thread(target=reader, args=(tid,), daemon=True)
               for tid in range(3)],
            errors)
        server.close()

        ordered = sorted(history)
        replay_cache: dict[int, str] = {}

        def replay(pin_lsn: int) -> str:
            cached = replay_cache.get(pin_lsn)
            if cached is None:
                dom = parse_document(BASE_XML)
                for lsn, statement in ordered:
                    if lsn > pin_lsn:
                        break
                    apply_to_dom(dom, parse_program(statement).body)
                cached = "".join(serialize(child)
                                 for child in dom.root_element.children
                                 if child.is_element)
                replay_cache[pin_lsn] = cached
            return cached

        assert observations
        for pin_lsn, text in observations:
            assert text == replay(pin_lsn), \
                f"stream at lsn {pin_lsn} diverged from serial replay"
        # At least one stream must have been racing the writers (pinned
        # strictly before the last commit), or the test proved nothing.
        last_lsn = max(lsn for lsn, __ in history)
        assert any(pin < last_lsn for pin, __ in observations)
        dbms.close()


# ---------------------------------------------------------------------------
# hypothesis property: prefix visibility + reclamation safety
# ---------------------------------------------------------------------------

_OPS = st.lists(
    st.tuples(st.sampled_from(["commit", "pin", "release", "free"]),
              st.integers(min_value=0, max_value=7),
              st.integers(min_value=0, max_value=254)),
    min_size=1, max_size=32)


class TestSnapshotPrefixProperty:
    """Page-level model check of visibility and reclamation.

    The model: ``committed`` maps live page → its committed fill byte;
    every pinned snapshot remembers the mapping at its pin.  After any
    interleaving of commits, pins, releases and transactional frees,
    each snapshot must read its remembered bytes exactly, and the
    pager's free count must equal the model's (a freed page becomes
    reusable only once no snapshot pinned before the free remains).
    """

    PAGES = 4

    @settings(max_examples=30, deadline=None)
    @given(ops=_OPS)
    def test_prefix_visibility_and_reclamation(self, ops):
        path = os.path.join(tempfile.mkdtemp("mvccprop"), "p.db")
        db = Database(path, buffer_capacity=16)
        pool = db.buffer_pool
        page_size = db.pager.page_size
        try:
            committed: dict[int, int] = {}
            with db.transaction():
                for __ in range(self.PAGES):
                    page_id, page = pool.new_page()
                    page[:] = bytes([1]) * page_size
                    pool.unpin(page_id, dirty=True)
                    committed[page_id] = 1
            base_free = db.pager.free_page_count()
            # (snapshot, expected page→byte at pin, lsn)
            pinned: list[tuple[object, dict[int, int], int]] = []
            # (free-commit lsn,) for frees whose pager free is deferred.
            free_gates: list[int] = []
            executed_frees = 0

            def model_executed_frees() -> int:
                floor = min((lsn for __, ___, lsn in pinned),
                            default=None)
                done = 0
                for gate in free_gates:
                    if floor is None or floor >= gate:
                        done += 1
                return done

            for kind, index, value in ops:
                if kind == "commit" and committed:
                    page_id = sorted(committed)[index % len(committed)]
                    fill = value + 1
                    with db.transaction():
                        with pool.latched(page_id, exclusive=True) as pg:
                            pg[:] = bytes([fill]) * page_size
                    committed[page_id] = fill
                elif kind == "pin":
                    snapshot = pool.pin_snapshot()
                    pinned.append((snapshot, dict(committed),
                                   snapshot.lsn))
                elif kind == "release" and pinned:
                    snapshot, __, ___ = pinned.pop(index % len(pinned))
                    pool.release_snapshot(snapshot)
                elif kind == "free" and len(committed) > 1:
                    page_id = sorted(committed)[index % len(committed)]
                    with db.transaction() as txn:
                        pool.free_page(page_id)
                    committed.pop(page_id)
                    free_gates.append(txn.commit_lsn)

                # Every snapshot reads exactly its pinned prefix.
                for snapshot, expected, lsn in pinned:
                    if not expected:
                        continue
                    probe = sorted(expected)[value % len(expected)]
                    with pool.reading(snapshot):
                        data = pool.get_page(probe, pin=False)
                        assert data[0] == expected[probe], \
                            f"snapshot at lsn {lsn} read torn page {probe}"
                # Reclamation never frees a reachable page.
                executed_frees = model_executed_frees()
                assert db.pager.free_page_count() \
                    == base_free + executed_frees

            for snapshot, __, ___ in pinned:
                pool.release_snapshot(snapshot)
            assert db.pager.free_page_count() \
                == base_free + len(free_gates)
            stats = pool.mvcc_stats()
            assert stats["snapshots_pinned"] == 0
            assert stats["versions_retained"] == 0
            assert stats["pending_frees"] == 0
        finally:
            db.close()


# ---------------------------------------------------------------------------
# group commit: shared fsyncs, individual durability
# ---------------------------------------------------------------------------


class TestGroupCommit:
    def test_concurrent_writers_share_fsyncs(self, tmp_path,
                                             monkeypatch):
        """With a slow fsync, pipelined writers must batch: strictly
        fewer fsyncs than commits, every commit individually durable."""
        from repro.storage import wal as walmod

        real_sync = walmod.WriteAheadLog.sync

        def slow_sync(self):
            time.sleep(0.01)
            real_sync(self)

        monkeypatch.setattr(walmod.WriteAheadLog, "sync", slow_sync)
        dbms = XmlDbms(str(tmp_path / "gc.db"), buffer_capacity=256)
        dbms.load("log", xml=BASE_XML)
        threads = 8
        per_thread = 4
        errors: list[BaseException] = []
        lsns: list[int] = []
        lock = threading.Lock()

        def writer(tid: int) -> None:
            try:
                for k in range(per_thread):
                    result = dbms.update(
                        "log", f"insert node <g{tid}x{k}>v</g{tid}x{k}> "
                               f"as last into /log")
                    with lock:
                        lsns.append(result.commit_lsn)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        run_threads([threading.Thread(target=writer, args=(tid,),
                                      daemon=True)
                     for tid in range(threads)], errors)
        stats = dbms.mvcc_stats()
        assert stats["group_commits"] == threads * per_thread
        assert stats["group_fsyncs"] < stats["group_commits"], \
            "no fsync was ever shared — group commit is not batching"
        assert stats["fsyncs_saved"] \
            == stats["group_commits"] - stats["group_fsyncs"]
        assert stats["max_batch"] >= 2
        assert len(set(lsns)) == threads * per_thread
        # Every commit really landed (all inserts present, all whole).
        labels = sorted(node.name
                        for node in dbms.execute("log", "/log/*")
                        if node.name != "meta")
        assert labels == sorted(f"g{tid}x{k}" for tid in range(threads)
                                for k in range(per_thread))
        dbms.close()

    def test_commit_lsn_orders_snapshot_visibility(self, tmp_path):
        """A snapshot pinned between two commits sees exactly the first."""
        dbms = XmlDbms(str(tmp_path / "vis.db"))
        dbms.load("log", xml=BASE_XML)
        first = dbms.update("log",
                            "insert node <a>1</a> as last into /log")
        with dbms.read_ticket("log") as ticket:
            assert ticket.snapshot_lsn >= first.commit_lsn
            # Writers never run on a snapshot-bound thread; commit the
            # second update from the side while the ticket stays pinned.
            box: list = []
            helper = threading.Thread(
                target=lambda: box.append(dbms.update(
                    "log", "insert node <b>2</b> as last into /log")),
                daemon=True)
            helper.start()
            helper.join(timeout=JOIN_TIMEOUT)
            assert not helper.is_alive() and box
            assert box[0].commit_lsn > ticket.snapshot_lsn
            session = dbms.session()
            text = session.query("log", "/log")
            assert "<a>1</a>" in text
            assert "<b>" not in text
        # A fresh ticket (new pin) sees both commits.
        with dbms.read_ticket("log"):
            text = dbms.session().query("log", "/log")
            assert "<a>1</a>" in text and "<b>2</b>" in text
        dbms.close()
