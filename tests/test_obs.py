"""End-to-end observability: traces, ANALYZE profiles, metrics.

The claims under test, bottom-up:

* the moved ``LatencyHistogram`` handles its edge cases (empty
  snapshots, single-sample p99, values past the top log2 bucket);
* ``MetricsRegistry`` flattens nested producer snapshots, survives a
  raising producer, and renders a stable Prometheus-style page;
* ``Span``/``TraceContext`` round-trip over their wire payloads and
  stitch remote trees with ``attach``;
* ``explain(analyze=True)`` / ``Cursor.profile()`` report per-operator
  batches, rows, wall time and memory, and cost nothing when off;
* a traced query over one ``NetworkServer`` returns the server's span
  tree on the final page, grafted under the client's context;
* a traced query through a sharded cluster — in-process and as the
  real ``python -m repro.shard`` process — yields ONE stitched tree:
  client span → mediator span → per-shard wire spans → per-operator
  ANALYZE profiles (the PR's acceptance criterion);
* the METRICS frame serves every layer's counters off one page, and
  the slow-query log emits a JSON line with the span tree attached.
"""

import json
import logging
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core import XmlDbms
from repro.errors import ProtocolError
from repro.net import NetClient, NetworkServer
from repro.net.protocol import MsgKind
from repro.obs import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    SlowQueryLog,
    Span,
    TraceContext,
    registry_of,
)
from repro.obs.__main__ import pretty
from repro.shard import ShardedServer


def items_xml(count, tag="item"):
    return ("<r>"
            + "".join(f"<{tag}>v{i}</{tag}>" for i in range(count))
            + "</r>")


# -- LatencyHistogram edge cases ---------------------------------------------


class TestLatencyHistogram:

    def test_empty_percentiles_are_zero(self):
        histogram = LatencyHistogram()
        assert histogram.percentile(0.50) == 0.0
        assert histogram.percentile(0.99) == 0.0
        snapshot = histogram.snapshot()
        assert snapshot.count == 0
        assert snapshot.p99_ms == 0.0
        assert snapshot.max_ms == 0.0
        assert snapshot.as_dict()["mean_ms"] == 0.0

    def test_single_sample_percentiles_are_exact(self):
        histogram = LatencyHistogram()
        histogram.record(0.005)
        # Any fraction maps to at least rank 1; the bucket upper bound
        # clamps into [min, max] = [0.005, 0.005], so exact.
        for fraction in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert histogram.percentile(fraction) == pytest.approx(0.005)
        assert histogram.snapshot().p99_ms == pytest.approx(5.0)

    def test_value_past_top_bucket_clamps_to_true_max(self):
        histogram = LatencyHistogram()
        # 2**70 µs is far beyond bucket 63; it must land in the last
        # bucket and still report the recorded value, not the bound.
        huge = float(2 ** 70) / 1e6
        histogram.record(huge)
        assert histogram.percentile(0.99) == pytest.approx(huge)
        assert histogram.max == pytest.approx(huge)

    def test_percentiles_stay_inside_observed_range(self):
        histogram = LatencyHistogram()
        values = [0.0001 * (i + 1) for i in range(100)]
        for value in values:
            histogram.record(value)
        for fraction in (0.01, 0.5, 0.9, 0.99):
            estimate = histogram.percentile(fraction)
            assert min(values) <= estimate <= max(values)
        # Upper-bound estimator: never below the true quantile's bucket.
        assert histogram.percentile(0.99) >= values[94]

    def test_sub_microsecond_clamps_to_first_bucket(self):
        histogram = LatencyHistogram()
        histogram.record(0.0)
        histogram.record(1e-9)
        assert histogram.count == 2
        assert histogram.percentile(0.5) >= 0.0
        assert histogram.mean == pytest.approx(5e-10)


# -- the metrics registry ----------------------------------------------------


class TestMetricsRegistry:

    def test_flattens_nested_numeric_leaves(self):
        registry = MetricsRegistry()
        registry.register("layer", lambda: {
            "count": 3,
            "nested": {"hit_rate": 0.5, "name": "skipped",
                       "flag": True, "none": None, "list": [1, 2]},
        })
        collected = registry.collect()
        assert collected["layer.count"] == 3
        assert collected["layer.nested.hit_rate"] == 0.5
        assert not any("name" in key or "flag" in key or "list" in key
                       for key in collected)

    def test_bare_number_and_callable_instruments(self):
        registry = MetricsRegistry()
        counter = Counter()
        counter.inc(7)
        gauge = Gauge()
        gauge.set(2.5)
        registry.register("hits", counter)
        registry.register("depth", gauge)
        collected = registry.collect()
        assert collected["hits"] == 7
        assert collected["depth"] == 2.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_raising_producer_is_skipped_and_counted(self):
        registry = MetricsRegistry()
        registry.register("good", lambda: {"value": 1})
        registry.register("bad", lambda: 1 / 0)
        collected = registry.collect()
        assert collected["good.value"] == 1
        assert collected["registry.producer_errors"] == 1
        assert registry.collect()["registry.producer_errors"] == 2

    def test_render_text_is_sorted_and_sanitized(self):
        registry = MetricsRegistry()
        registry.register("a.b", lambda: {"x-y": 1})
        registry.register("z", lambda: 2)
        text = registry.render_text()
        lines = text.strip().splitlines()
        assert "repro_a_b_x_y 1" in lines
        assert "repro_z 2" in lines
        assert lines == sorted(lines)

    def test_register_replaces_and_unregister_drops(self):
        registry = MetricsRegistry()
        registry.register("p", lambda: 1)
        registry.register("p", lambda: 2)
        assert registry.collect()["p"] == 2
        registry.unregister("p")
        registry.unregister("p")     # missing is not an error
        assert "p" not in registry.collect()
        with pytest.raises(ValueError):
            registry.register("", lambda: 0)

    def test_registry_of_duck_type(self):
        class WithRegistry:
            metrics_registry = MetricsRegistry()

        class Without:
            metrics_registry = "not a registry"

        assert registry_of(WithRegistry()) is WithRegistry.metrics_registry
        assert registry_of(Without()) is None
        assert registry_of(object()) is None


# -- spans and trace contexts ------------------------------------------------


class TestTrace:

    def test_span_tree_round_trips_through_dict(self):
        root = Span("root", {"k": 1})
        child = root.child("child", step=2)
        child.event("done", duration_ms=1.5)
        child.end(rows=3)
        root.end()
        rebuilt = Span.from_dict(root.as_dict())
        assert rebuilt.name == "root"
        assert rebuilt.attributes == {"k": 1}
        assert rebuilt.children[0].attributes == {"step": 2, "rows": 3}
        assert rebuilt.find("done").duration_ms == 1.5
        assert [span.name for span in rebuilt.walk()] == [
            "root", "child", "done"]

    def test_end_is_idempotent_but_merges_attributes(self):
        span = Span("s")
        span.end(first=1)
        duration = span.duration_ms
        span.end(second=2)
        assert span.duration_ms == duration
        assert span.attributes == {"first": 1, "second": 2}

    def test_context_payload_round_trip(self):
        trace = TraceContext("client", deadline=time.monotonic() + 5.0)
        payload = trace.as_payload()
        assert payload["id"] == trace.trace_id
        assert 0 < payload["time_left_ms"] <= 5000
        remote = TraceContext.from_payload(payload, name="shard",
                                           document="d")
        assert remote.trace_id == trace.trace_id
        assert remote.root.name == "shard"
        assert remote.root.attributes["document"] == "d"
        assert remote.root.attributes["time_left_ms"] > 0

    def test_span_stack_and_attach(self):
        trace = TraceContext("query")
        with trace.span("outer") as outer:
            assert trace.current is outer
            trace.event("tick", duration_ms=0.1)
            trace.attach([{"name": "remote", "duration_ms": 2.0}])
        assert trace.current is trace.root
        assert outer.find("remote").duration_ms == 2.0
        assert outer.duration_ms is not None

    def test_close_is_re_callable_and_carries_trace_id(self):
        trace = TraceContext("query", trace_id="abc123")
        first = trace.close(rows=1)
        second = trace.close()
        assert first[0]["trace_id"] == "abc123"
        assert second[0]["duration_ms"] == first[0]["duration_ms"]
        assert "abc123" in trace.render()


class TestSlowQueryLog:

    def test_threshold_filters_and_logs_json(self, caplog):
        log = SlowQueryLog(0.5)
        assert not log.observe({"document": "d", "seconds": 0.1})
        assert log.count == 0
        with caplog.at_level(logging.WARNING, logger="repro.obs.slowlog"):
            assert log.observe({"document": "d", "seconds": 0.9},
                               spans=[{"name": "server"}])
        entry = json.loads(caplog.records[-1].getMessage())
        assert entry["event"] == "slow_query"
        assert entry["seconds"] == 0.9
        assert entry["trace"] == [{"name": "server"}]
        assert log.count == 1 and len(log.recent) == 1
        assert log() == {"slow_queries": 1}

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            SlowQueryLog(-1.0)


# -- EXPLAIN ANALYZE through the session -------------------------------------


class TestAnalyze:

    def test_explain_analyze_reports_operator_profiles(self, fig2):
        session = fig2.session()
        report = session.explain(
            "fig2", "for $n in //name return $n", analyze=True)
        assert report.profiles, "analyze produced no operator profiles"
        for profile in report.profiles:
            assert profile["batches"] >= 1
            assert profile["rows"] >= 0
            assert profile["wall_ns"] >= 0
            assert profile["memory_peak"] >= 0
            assert profile["op"]
        assert "analyze:" in str(report)

    def test_cursor_profile_after_drain(self, fig2):
        session = fig2.session()
        prepared = session.prepare("fig2",
                                   "for $n in //name return $n")
        with prepared.execute(analyze=True) as cursor:
            rows = cursor.fetchall()
            profiles = cursor.profile()
        assert rows
        assert profiles
        roots = [p for p in profiles if p["depth"] == 0]
        assert sum(p["rows"] for p in roots) >= len(rows) or any(
            p["rows"] for p in profiles)
        assert cursor.profile_text()

    def test_unprofiled_cursor_reports_none(self, fig2):
        session = fig2.session()
        prepared = session.prepare("fig2",
                                   "for $n in //name return $n")
        with prepared.execute() as cursor:
            cursor.fetchall()
            assert cursor.profile() is None
            assert cursor.profile_text() is None

    def test_session_execute_trace_includes_plan_spans(self, fig2):
        session = fig2.session()
        trace = TraceContext("test")
        rows = session.execute("fig2",
                               "for $n in //name return $n",
                               trace=trace)
        assert rows
        trace.root.end()
        execute = trace.root.find("execute")
        assert execute is not None
        assert execute.attributes["rows"] == len(rows)
        assert execute.find("plan") is not None


# -- one server over the wire ------------------------------------------------


@pytest.fixture
def net_server(dbms):
    dbms.load("r", xml=items_xml(40))
    server = NetworkServer(dbms, workers=2, page_size=8,
                           log_interval=0.0, slow_query_seconds=0.0)
    server.start()
    yield server
    server.stop()


class TestWireTracing:

    def test_traced_query_returns_stitched_spans(self, net_server):
        with NetClient(*net_server.address) as client:
            trace = TraceContext("client")
            cursor = client.execute("r", "for $i in //item return $i",
                                    trace=trace)
            rows = cursor.fetchall()
            trace.root.end()
        assert len(rows) == 40
        assert cursor.spans, "final page carried no spans"
        server_span = trace.root.find("server")
        assert server_span is not None
        assert server_span.attributes["rows"] == 40
        execute = server_span.find("execute")
        assert execute is not None
        assert execute.find("plan") is not None
        # The wire payload carries the trace id back on the root.
        assert cursor.spans[0]["trace_id"] == trace.trace_id

    def test_untraced_query_has_no_spans(self, net_server):
        with NetClient(*net_server.address) as client:
            cursor = client.execute("r", "//item")
            cursor.fetchall()
        assert cursor.spans is None

    def test_traced_update_attaches_spans(self, net_server):
        with NetClient(*net_server.address) as client:
            trace = TraceContext("client")
            result = client.update(
                "r", "insert node <item>new</item> as last into /r",
                trace=trace)
        assert "spans" not in result
        assert result["nodes_inserted"] >= 1
        server_span = trace.root.find("server")
        assert server_span is not None
        assert server_span.find("update") is not None

    def test_bad_trace_payload_is_a_protocol_error(self, net_server):
        # Speak the frame directly: the client's own conversion would
        # reject a non-object trace before it ever reached the wire.
        with NetClient(*net_server.address) as client:
            with pytest.raises(ProtocolError):
                client._request(
                    MsgKind.EXECUTE,
                    {"document": "r", "query": "//item",
                     "trace": "not-an-object"},
                    MsgKind.EXECUTE_OK)

    def test_metrics_page_serves_every_layer(self, net_server):
        with NetClient(*net_server.address) as client:
            client.execute("r", "//item").fetchall()
            text = client.metrics()
        lines = text.strip().splitlines()
        assert lines == sorted(lines)
        page = "\n".join(lines)
        assert "repro_server_submitted" in page
        assert "repro_server_completed" in page
        assert "repro_network_queries" in page
        assert "repro_storage_buffer_hit_rate" in page
        assert "repro_slowlog_slow_queries" in page
        assert "repro_registry_producer_errors 0" in page

    def test_slow_query_log_observes_wire_queries(self, net_server,
                                                  caplog):
        with caplog.at_level(logging.WARNING,
                             logger="repro.obs.slowlog"):
            with NetClient(*net_server.address) as client:
                trace = TraceContext("client")
                client.execute("r", "//item", trace=trace).fetchall()
        # Threshold 0.0: every finished query is an offender.
        assert net_server.slow_log.count >= 1
        entry = net_server.slow_log.recent[-1]
        assert entry["document"] == "r"
        assert entry["trace"][0]["name"] == "server"

    def test_pretty_printer_groups_by_subsystem(self, net_server,
                                                capsys):
        from repro.obs.__main__ import main
        host, port = net_server.address
        assert main(["--host", host, "--port", str(port)]) == 0
        out = capsys.readouterr().out
        assert "== server ==" in out
        assert "== network ==" in out
        assert main(["--host", host, "--port", "1",
                     ]) == 1          # nothing listens on port 1

    def test_pretty_alignment(self):
        text = "repro_a_x 1\nrepro_b_longer_name 2\n"
        rendered = pretty(text)
        assert "== a ==" in rendered and "== b ==" in rendered
        assert "repro_a_x" in rendered


# -- the sharded cluster, in process -----------------------------------------


@pytest.fixture
def traced_cluster(tmp_path):
    dbs, servers = [], []
    for index in range(2):
        dbms = XmlDbms(str(tmp_path / f"shard-{index}.db"),
                       buffer_capacity=256)
        server = NetworkServer(dbms, workers=2, page_size=8,
                               log_interval=0.0, shard_id=index)
        server.start()
        dbs.append(dbms)
        servers.append(server)
    mediator = ShardedServer([server.address for server in servers],
                             timeout=30.0)
    front = NetworkServer(None, page_size=8, log_interval=0.0,
                          query_server=mediator,
                          slow_query_seconds=0.0)
    front.start()
    yield mediator, front
    front.stop()
    mediator.close()
    for server in servers:
        server.stop()
    for dbms in dbs:
        dbms.close()


class TestClusterTracing:

    def test_fanout_stitches_one_tree(self, traced_cluster):
        mediator, front = traced_cluster
        mediator.load("r", xml=items_xml(30), parts=2)
        with NetClient(*front.address) as client:
            trace = TraceContext("client")
            cursor = client.execute("r", "for $i in //item return $i",
                                    trace=trace)
            rows = cursor.fetchall()
            trace.root.end()
        assert len(rows) == 30
        mediator_span = trace.root.find("mediator")
        assert mediator_span is not None
        assert mediator_span.attributes["parts"] == 2
        shard_spans = [span for span in mediator_span.walk()
                       if span.name == "shard"]
        assert len(shard_spans) == 2
        assert {span.attributes["shard"]
                for span in shard_spans} == {0, 1}
        for span in shard_spans:
            assert span.find("execute") is not None, span.render()
            assert span.find("plan") is not None, span.render()
        # One tree, one trace id, end to end.
        assert cursor.spans[0]["trace_id"] == trace.trace_id

    def test_routed_query_and_update_traced(self, traced_cluster):
        mediator, front = traced_cluster
        mediator.load("solo", xml=items_xml(5))
        with NetClient(*front.address) as client:
            trace = TraceContext("client")
            client.execute("solo", "//item", trace=trace).fetchall()
            mediator_span = trace.root.find("mediator")
            assert mediator_span is not None
            assert mediator_span.find("execute") is not None

            update_trace = TraceContext("client")
            result = client.update(
                "solo", "insert node <item>x</item> as last into /r",
                trace=update_trace)
            assert "spans" not in result
            med = update_trace.root.find("mediator")
            assert med is not None
            assert med.find("update") is not None

    def test_front_door_metrics_include_mediator(self, traced_cluster):
        mediator, front = traced_cluster
        mediator.load("m", xml=items_xml(4))
        with NetClient(*front.address) as client:
            client.execute("m", "//item").fetchall()
            text = client.metrics()
        assert "repro_mediator_queries" in text
        assert "repro_mediator_shards 2" in text
        assert "repro_network_queries" in text
        # The front door joined the mediator's registry, not a new one.
        assert front.metrics_registry is mediator.metrics_registry


# -- the real process cluster (the acceptance criterion) ---------------------


def test_shard_subprocess_end_to_end_trace_and_metrics(tmp_path):
    """One query through ``python -m repro.shard`` with tracing enabled
    yields a single stitched trace: mediator span → per-shard wire
    spans → per-operator ANALYZE profiles."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.shard",
         "--shards", "2", "--data-dir", str(tmp_path / "cluster"),
         "--generate", "dblp=dblp:40", "--partition", "dblp",
         "--log-interval", "0", "--slow-query-ms", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env={**os.environ,
             "PYTHONPATH": str(Path(__file__).parent.parent / "src")})
    try:
        banner = process.stdout.readline().split()
        assert banner and banner[0] == "LISTENING", (
            process.stderr.read()[-2000:])
        host, port = banner[1], int(banner[2])
        with NetClient(host, port) as client:
            trace = TraceContext("client", document="dblp")
            cursor = client.execute(
                "dblp", "for $a in //author return $a", trace=trace)
            rows = cursor.fetchall()
            trace.root.end()
            assert rows, "partitioned document served no rows"

            # One stitched tree under one trace id.
            assert cursor.spans[0]["trace_id"] == trace.trace_id
            mediator_span = trace.root.find("mediator")
            assert mediator_span is not None, trace.render()
            shard_spans = [span for span in mediator_span.walk()
                           if span.name == "shard"]
            assert len(shard_spans) == 2, trace.render()
            total = 0
            for span in shard_spans:
                execute = span.find("execute")
                assert execute is not None, trace.render()
                total += execute.attributes["rows"]
                plan = span.find("plan")
                assert plan is not None, trace.render()
                # Operator profiles underneath carry ANALYZE numbers.
                operators = [child for child in plan.walk()
                             if "batches" in child.attributes]
                assert operators, trace.render()
                for op in operators:
                    assert op.attributes["batches"] >= 1
                    assert op.attributes["rows"] >= 0
            assert total == len(rows)

            # The METRICS frame serves the whole cluster front door.
            text = client.metrics()
            assert "repro_mediator_fanouts" in text
            assert "repro_network_queries" in text
            assert "repro_slowlog_slow_queries" in text
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()
    assert process.returncode == 0


# -- locking discipline of the metric primitives ------------------------------


class _CountingLock:
    """A context-manager lock that counts its acquisitions."""

    def __init__(self):
        self.entries = 0

    def __enter__(self):
        self.entries += 1
        return self

    def __exit__(self, *exc_info):
        return False


class TestMetricsLocking:
    """Reads of shared counters go through the lock (RL002's contract)."""

    def test_counter_reads_take_the_lock(self):
        counter = Counter()
        counter.inc(3)
        lock = _CountingLock()
        counter._lock = lock
        assert counter.value == 3
        assert counter() == 3
        assert lock.entries == 2

    def test_gauge_reads_take_the_lock(self):
        gauge = Gauge()
        gauge.set(2.5)
        lock = _CountingLock()
        gauge._lock = lock
        assert gauge.value == 2.5
        assert gauge() == 2.5
        assert lock.entries == 2

    def test_histogram_count_and_max_take_the_lock(self):
        histogram = LatencyHistogram()
        histogram.record(0.002)
        lock = _CountingLock()
        histogram._lock = lock
        assert histogram.count == 1
        assert histogram.max == pytest.approx(0.002)
        assert lock.entries == 2

    def test_histogram_snapshot_is_one_critical_section(self):
        # count, mean, and the three percentiles must describe the same
        # population: the snapshot takes the lock exactly once instead
        # of composing separately-locked reads.
        histogram = LatencyHistogram()
        for value in (0.001, 0.002, 0.004):
            histogram.record(value)
        lock = _CountingLock()
        histogram._lock = lock
        snapshot = histogram.snapshot()
        assert snapshot.count == 3
        assert lock.entries == 1

    def test_registry_error_counter_is_read_under_the_lock(self):
        registry = MetricsRegistry()

        def boom():
            raise RuntimeError("broken producer")

        registry.register("bad", boom)
        lock = _CountingLock()
        registry._lock = lock
        flat = registry.collect()
        assert flat["registry.producer_errors"] == 1
        # One acquisition to copy the producers, one to count the
        # error, one to read the error counter at the end.
        assert lock.entries == 3
