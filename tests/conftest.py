"""Shared fixtures: temporary databases with the standard documents."""

from __future__ import annotations

import pytest

from repro.core.dbms import XmlDbms
from repro.storage.db import Database
from repro.workloads.dblp import DblpConfig, generate_dblp
from repro.workloads.handmade import EDGE_CASE_DOCUMENTS, FIGURE2_XML
from repro.workloads.treebank import TreebankConfig, generate_treebank

#: Small, fast workload sizes for unit/integration tests.
SMALL_DBLP = DblpConfig(articles=60, inproceedings=20, name_pool=20,
                        errata=3, editors=3, volume_fraction=0.1)
SMALL_TREEBANK = TreebankConfig(sentences=12, max_depth=12)


@pytest.fixture
def database(tmp_path):
    """An empty low-level database."""
    with Database.create(str(tmp_path / "unit.db"),
                         buffer_capacity=64) as db:
        yield db


@pytest.fixture
def dbms(tmp_path):
    """An empty XmlDbms."""
    with XmlDbms(str(tmp_path / "dbms.db"), buffer_capacity=512) as dbms:
        yield dbms


@pytest.fixture
def fig2(dbms):
    """XmlDbms with the Figure 2 document loaded as 'fig2'."""
    dbms.load("fig2", xml=FIGURE2_XML)
    return dbms


@pytest.fixture(scope="session")
def dblp_xml():
    return generate_dblp(SMALL_DBLP)


@pytest.fixture(scope="session")
def treebank_xml():
    return generate_treebank(SMALL_TREEBANK)


@pytest.fixture
def loaded(tmp_path, dblp_xml, treebank_xml):
    """XmlDbms with all four paper documents loaded (scaled down)."""
    with XmlDbms(str(tmp_path / "all.db"), buffer_capacity=1024) as dbms:
        dbms.load("fig2", xml=FIGURE2_XML)
        dbms.load("dblp", xml=dblp_xml)
        dbms.load("treebank", xml=treebank_xml)
        dbms.load("edge", xml=EDGE_CASE_DOCUMENTS["mixed-empty"])
        yield dbms
