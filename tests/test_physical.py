"""Physical operator tests over a small loaded document."""

import pytest

from repro.algebra.ra import Attr, Compare, Const, EQ, VarField
from repro.errors import ResourceLimitExceeded
from repro.physical.context import Bindings, ExecutionContext, MemoryMeter
from repro.physical.materialize import Materializer, reset_materializers
from repro.physical.operators import (
    ChildLookup,
    ConstantRow,
    Filter,
    FullScan,
    IndexNestedLoopsJoin,
    LabelIndexScan,
    NestedLoopsJoin,
    PrimaryLookup,
    PrimaryRangeScan,
    ProjectBindings,
    SemiJoin,
    ValueIndexProbe,
)
from repro.physical.sort import ExternalSort
from repro.xasr import ELEMENT, TEXT, StoredDocument, load_document
from repro.workloads.handmade import FIGURE2_XML


@pytest.fixture
def doc(database):
    load_document(database, "fig2", xml=FIGURE2_XML)
    return StoredDocument(database, "fig2")


@pytest.fixture
def ctx(doc):
    return ExecutionContext(doc)


def env_bindings(doc, **vars_):
    env = {"#root": doc.root()}
    env.update(vars_)
    return Bindings(env)


def run(op, ctx, bindings):
    return list(op.execute(ctx, bindings))


class TestAccessPaths:
    def test_full_scan_unfiltered(self, doc, ctx):
        rows = run(FullScan("A", []), ctx, env_bindings(doc))
        assert [row[0].in_ for row in rows] == [1, 2, 3, 4, 5, 8, 9, 13,
                                                14]

    def test_full_scan_with_predicate(self, doc, ctx):
        conds = [Compare(Attr("A", "value"), EQ, Const("name"))]
        rows = run(FullScan("A", conds), ctx, env_bindings(doc))
        assert [row[0].in_ for row in rows] == [4, 8]

    def test_label_index_scan(self, doc, ctx):
        op = LabelIndexScan("A", ELEMENT, "name", [])
        rows = run(op, ctx, env_bindings(doc))
        assert [row[0].in_ for row in rows] == [4, 8]

    def test_label_index_scan_text(self, doc, ctx):
        op = LabelIndexScan("T", TEXT, "Bob", [])
        rows = run(op, ctx, env_bindings(doc))
        assert [row[0].in_ for row in rows] == [9]

    def test_primary_lookup_hit_and_miss(self, doc, ctx):
        op = PrimaryLookup("A", Const(2), [])
        assert [r[0].value for r in run(op, ctx, env_bindings(doc))] == \
            ["journal"]
        miss = PrimaryLookup("A", Const(6), [])
        assert run(miss, ctx, env_bindings(doc)) == []

    def test_primary_range_scan_descendants(self, doc, ctx):
        journal = doc.node(2)
        op = PrimaryRangeScan("D", VarField("x", "in"),
                              VarField("x", "out"), [])
        rows = run(op, ctx, env_bindings(doc, x=journal))
        assert [row[0].in_ for row in rows] == [3, 4, 5, 8, 9, 13, 14]

    def test_child_lookup(self, doc, ctx):
        op = ChildLookup("C", Const(3), [])
        rows = run(op, ctx, env_bindings(doc))
        assert [row[0].in_ for row in rows] == [4, 8]

    def test_value_index_probe(self, doc, ctx):
        ana = doc.node(5)
        op = ValueIndexProbe("T", TEXT, VarField("t", "in"), [])
        # value_operand resolving to a non-string is skipped; use an
        # Attr-style probe via bindings row instead:
        probe = ValueIndexProbe("T", TEXT, Attr("S", "value"), [])
        bindings = env_bindings(doc).extended(("S",), (ana,))
        rows = list(probe.execute(ctx, bindings))
        assert [row[0].in_ for row in rows] == [5]


class TestJoins:
    def test_nested_loops_join_with_condition(self, doc, ctx):
        outer = LabelIndexScan("P", ELEMENT, "name", [])
        inner = FullScan("T", [Compare(Attr("T", "type"), EQ, Const(2))])
        join = NestedLoopsJoin(outer, inner, [
            Compare(Attr("T", "parent_in"), EQ, Attr("P", "in"))])
        rows = run(join, ctx, env_bindings(doc))
        assert [(p.in_, t.in_) for p, t in rows] == [(4, 5), (8, 9)]

    def test_cross_product_when_no_conditions(self, doc, ctx):
        outer = LabelIndexScan("A", ELEMENT, "name", [])
        inner = LabelIndexScan("B", ELEMENT, "name", [])
        rows = run(NestedLoopsJoin(outer, inner, []), ctx,
                   env_bindings(doc))
        assert len(rows) == 4

    def test_index_nested_loops_join(self, doc, ctx):
        outer = LabelIndexScan("P", ELEMENT, "name", [])
        probe = ChildLookup("T", Attr("P", "in"),
                            [Compare(Attr("T", "type"), EQ, Const(2))])
        rows = run(IndexNestedLoopsJoin(outer, probe), ctx,
                   env_bindings(doc))
        assert [(p.in_, t.in_) for p, t in rows] == [(4, 5), (8, 9)]

    def test_semi_join_keeps_outer_schema(self, doc, ctx):
        outer = LabelIndexScan("P", ELEMENT, "name", [])
        probe = ChildLookup("T", Attr("P", "in"), [])
        semi = SemiJoin(outer, probe)
        rows = run(semi, ctx, env_bindings(doc))
        assert semi.schema == ("P",)
        assert [row[0].in_ for row in rows] == [4, 8]

    def test_semi_join_filters_nonmatching(self, doc, ctx):
        outer = FullScan("E", [Compare(Attr("E", "type"), EQ, Const(1))])
        probe = ChildLookup("T", Attr("E", "in"),
                            [Compare(Attr("T", "value"), EQ,
                                     Const("Ana"))])
        rows = run(SemiJoin(outer, probe), ctx, env_bindings(doc))
        assert [row[0].value for row in rows] == ["name"]

    def test_join_order_is_lexicographic(self, doc, ctx):
        outer = LabelIndexScan("P", ELEMENT, "name", [])
        probe = PrimaryRangeScan("D", Attr("P", "in"), Attr("P", "out"),
                                 [])
        rows = run(IndexNestedLoopsJoin(outer, probe), ctx,
                   env_bindings(doc))
        keys = [(p.in_, d.in_) for p, d in rows]
        assert keys == sorted(keys)


class TestProjectionAndFilter:
    def test_filter(self, doc, ctx):
        scan = FullScan("A", [])
        out = Filter(scan, [Compare(Attr("A", "type"), EQ, Const(2))])
        rows = run(out, ctx, env_bindings(doc))
        assert all(row[0].type == 2 for row in rows)

    def test_project_one_pass_dedup(self, doc, ctx):
        outer = LabelIndexScan("P", ELEMENT, "name", [])
        probe = ChildLookup("T", Attr("P", "in"), [])
        join = IndexNestedLoopsJoin(outer, probe)
        project = ProjectBindings(join, ("P",), assume_sorted=True)
        rows = run(project, ctx, env_bindings(doc))
        assert [row[0].in_ for row in rows] == [4, 8]

    def test_project_hash_dedup(self, doc, ctx):
        outer = LabelIndexScan("P", ELEMENT, "name", [])
        probe = ChildLookup("T", Attr("P", "in"), [])
        join = IndexNestedLoopsJoin(outer, probe)
        project = ProjectBindings(join, ("P",), assume_sorted=False)
        rows = run(project, ctx, env_bindings(doc))
        assert [row[0].in_ for row in rows] == [4, 8]

    def test_constant_row(self, doc, ctx):
        assert run(ConstantRow(), ctx, env_bindings(doc)) == [()]


class TestSortAndMaterialize:
    def test_external_sort_in_memory(self, doc, ctx):
        scan = FullScan("A", [])
        sort = ExternalSort(scan, ("A",), run_budget_rows=1000)
        rows = run(sort, ctx, env_bindings(doc))
        assert sort.spilled_runs == 0
        assert [row[0].in_ for row in rows] == sorted(
            row[0].in_ for row in rows)

    def test_external_sort_spills(self, doc, ctx):
        scan = FullScan("A", [])
        sort = ExternalSort(scan, ("A",), run_budget_rows=3)
        rows = run(sort, ctx, env_bindings(doc))
        assert sort.spilled_runs >= 3
        assert [row[0].in_ for row in rows] == [1, 2, 3, 4, 5, 8, 9, 13,
                                                14]

    def test_external_sort_cleans_temporaries(self, doc, ctx):
        before = set(doc.db.list_names())
        sort = ExternalSort(FullScan("A", []), ("A",), run_budget_rows=2)
        run(sort, ctx, env_bindings(doc))
        assert set(doc.db.list_names()) == before

    def test_materializer_caches(self, doc, ctx):
        scan = FullScan("A", [])
        mat = Materializer(scan)
        first = run(mat, ctx, env_bindings(doc))
        misses_after_first = ctx.document.db.stats.misses
        second = run(mat, ctx, env_bindings(doc))
        assert first == second
        # Replay touches no new pages beyond what is cached in memory.
        assert ctx.document.db.stats.misses == misses_after_first

    def test_materializer_spills_beyond_threshold(self, doc, ctx):
        mat = Materializer(FullScan("A", []), memory_threshold_rows=3)
        first = run(mat, ctx, env_bindings(doc))
        second = run(mat, ctx, env_bindings(doc))
        assert [r[0].in_ for r in first] == [r[0].in_ for r in second]
        reset_materializers(mat, doc.db)

    def test_materializer_partial_consumption_not_cached(self, doc, ctx):
        mat = Materializer(FullScan("A", []))
        iterator = mat.execute(ctx, env_bindings(doc))
        next(iterator)
        iterator.close()
        assert run(mat, ctx, env_bindings(doc))  # full result, not 1 row

    def test_reset_materializers_walks_tree(self, doc, ctx):
        mat = Materializer(FullScan("A", []))
        join = NestedLoopsJoin(FullScan("B", []), mat, [])
        run(join, ctx, env_bindings(doc))
        reset_materializers(join, doc.db)
        assert mat._rows is None

    def test_reset_clears_charged_bytes(self, doc, ctx):
        """Reset releases the cache's bytes against the meter that
        charged them (per-relfor-re-entry resets happen mid-execution,
        within one live context) and zeroes its own counter, so budgets
        are neither over- nor under-enforced across resets."""
        mat = Materializer(FullScan("A", []))
        run(mat, ctx, env_bindings(doc))
        assert mat._charged > 0
        assert ctx.meter.current == mat._charged
        mat.reset(doc.db)
        assert mat._charged == 0
        assert ctx.meter.current == 0

    def test_instantiate_plan_isolates_materializer_state(self, doc, ctx):
        from repro.physical.materialize import instantiate_plan

        mat = Materializer(FullScan("A", []))
        join = NestedLoopsJoin(FullScan("B", []), mat, [])
        clone = instantiate_plan(join)
        assert clone is not join
        assert clone.inner is not mat
        run(clone, ctx, env_bindings(doc))
        assert clone.inner._rows is not None
        assert mat._rows is None  # original untouched
        # Stateless trees are shared, not copied.
        scan = FullScan("A", [])
        assert instantiate_plan(scan) is scan


class TestResourceLimits:
    def test_time_limit_interrupts(self, doc):
        ctx = ExecutionContext(doc, deadline=0.0)  # already expired
        scan = FullScan("A", [])
        with pytest.raises(ResourceLimitExceeded) as excinfo:
            for __ in range(1000):
                list(scan.execute(ctx, env_bindings(doc)))
        assert excinfo.value.kind == "time"

    def test_memory_meter_raises_over_budget(self):
        meter = MemoryMeter(budget_bytes=100)
        meter.charge(50)
        with pytest.raises(ResourceLimitExceeded) as excinfo:
            meter.charge(51)
        assert excinfo.value.kind == "memory"

    def test_memory_meter_tracks_peak(self):
        meter = MemoryMeter()
        meter.charge(100)
        meter.release(40)
        meter.charge(10)
        assert meter.peak == 100
        assert meter.current == 70

    def test_materializer_charges_meter(self, doc):
        ctx = ExecutionContext(doc, memory_budget=50)  # absurdly small
        mat = Materializer(FullScan("A", []), memory_threshold_rows=10**6)
        with pytest.raises(ResourceLimitExceeded):
            run(mat, ctx, env_bindings(doc))


class TestExplain:
    def test_every_operator_explains(self, doc, ctx):
        outer = LabelIndexScan("P", ELEMENT, "name", [])
        probe = ChildLookup("T", Attr("P", "in"), [])
        plan = ProjectBindings(
            SemiJoin(IndexNestedLoopsJoin(outer, probe),
                     PrimaryRangeScan("D", Attr("P", "in"),
                                      Attr("P", "out"), [])),
            ("P",))
        text = plan.explain()
        for fragment in ("ProjectBindings", "SemiJoin",
                         "IndexNestedLoopsJoin", "LabelIndexScan",
                         "ChildLookup", "PrimaryRangeScan"):
            assert fragment in text
