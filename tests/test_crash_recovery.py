"""Crash-recovery harness: kill -9 a writer, reopen, assert consistency.

The contract under test (see ``src/repro/storage/wal.py``): after
SIGKILL at *any* instant, reopening the database yields the state after
some committed prefix of the update history — every acknowledged update
present, no torn pages, structurally valid XASR relations — and the
document remains fully updatable afterwards.

Two layers of tests:

* **Injected faults** — the writer kills itself at exact points in the
  commit protocol (before anything is written / after the WAL fsync /
  mid-append), making the required post-recovery state deterministic.
* **Randomized timing** — the parent kills the writer after a seeded
  random delay while it streams updates; the assertion is the prefix
  property itself rather than an exact count.
"""

from __future__ import annotations

import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.dbms import XmlDbms
from repro.xasr.document import StoredDocument

WRITER = Path(__file__).parent / "crash_writer.py"
SRC = str(Path(__file__).parent.parent / "src")


def _run_writer(db_path: str, updates: int, env_extra: dict | None = None,
                kill_after: float | None = None) -> list[int]:
    """Run the writer; returns the update ids it acknowledged.

    With ``kill_after`` the parent SIGKILLs the process that long after
    READY; otherwise the writer runs its injected fault (or completes).
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.update(env_extra or {})
    process = subprocess.Popen(
        [sys.executable, str(WRITER), db_path, str(updates)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env)
    try:
        if kill_after is None:
            output, __ = process.communicate(timeout=120)
        else:
            # Wait for READY (reading line-buffered output), then let it
            # run for the sampled delay and kill it mid-stream.
            assert process.stdout is not None
            first = process.stdout.readline()
            assert first.strip() == "READY", first
            time.sleep(kill_after)
            process.send_signal(signal.SIGKILL)
            output, __ = process.communicate(timeout=60)
            output = first + output
    except subprocess.TimeoutExpired:  # pragma: no cover - CI guard
        process.kill()
        raise
    acked = [int(line.split()[1]) for line in output.splitlines()
             if line.startswith("ACK ")]
    return acked


def _verify_integrity(db_path: str) -> list[str]:
    """Reopen, check XASR structural invariants, return /log's child
    labels (meta excluded)."""
    with XmlDbms(db_path) as dbms:
        stored = StoredDocument(dbms.db, "log")
        nodes = list(stored.scan())
        # Dense preorder numbering: n nodes use exactly 2n numbers, ins
        # ascend, intervals nest under their parents.
        numbers = sorted([n.in_ for n in nodes] + [n.out for n in nodes])
        assert numbers == list(range(1, 2 * len(nodes) + 1))
        by_in = {n.in_: n for n in nodes}
        for node in nodes:
            assert node.in_ < node.out
            if node.parent_in:
                parent = by_in[node.parent_in]
                assert parent.in_ < node.in_ < node.out < parent.out
        # The statistics payload must match the recovered relation.
        stats = stored.statistics
        assert stats.total_nodes == len(nodes)
        assert stats.max_in == 2 * len(nodes)
        labels = [node.name for node in dbms.execute("log", "/log/*")]
        assert labels[0] == "meta"
        return labels[1:]


def _assert_prefix(labels: list[str], acked: list[int],
                   exactly: int | None = None) -> int:
    """Recovered entries must be ``e0 .. e(m-1)`` with ``m`` covering
    every acknowledged update."""
    assert acked == list(range(len(acked)))
    assert labels == [f"e{i}" for i in range(len(labels))]
    if exactly is not None:
        assert len(labels) == exactly
    assert len(labels) >= len(acked)
    return len(labels)


class TestInjectedCrashPoints:
    @pytest.mark.parametrize("crash_at", [0, 1, 3])
    def test_kill_before_commit(self, tmp_path, crash_at):
        """Nothing of the k-th update may survive."""
        db = str(tmp_path / "c.db")
        acked = _run_writer(db, 6, {
            "REPRO_CRASH_AT_COMMIT": str(crash_at),
            "REPRO_CRASH_POINT": "before_commit",
        })
        # The writer ACKs exactly the updates before the crash point.
        labels = _verify_integrity(db)
        _assert_prefix(labels, acked, exactly=len(acked))

    @pytest.mark.parametrize("crash_at", [0, 2])
    def test_kill_after_wal_sync(self, tmp_path, crash_at):
        """A synced commit is durable even though never acknowledged."""
        db = str(tmp_path / "c.db")
        acked = _run_writer(db, 6, {
            "REPRO_CRASH_AT_COMMIT": str(crash_at),
            "REPRO_CRASH_POINT": "after_sync",
        })
        labels = _verify_integrity(db)
        # The crashed commit's update must be present: one more than
        # was acknowledged.
        _assert_prefix(labels, acked, exactly=len(acked) + 1)

    def test_kill_with_torn_tail(self, tmp_path):
        """Page records without a COMMIT are discarded on recovery."""
        db = str(tmp_path / "c.db")
        acked = _run_writer(db, 6, {
            "REPRO_CRASH_AT_COMMIT": "2",
            "REPRO_CRASH_POINT": "torn_tail",
        })
        labels = _verify_integrity(db)
        _assert_prefix(labels, acked, exactly=len(acked))

    def test_recovered_database_stays_updatable(self, tmp_path):
        db = str(tmp_path / "c.db")
        _run_writer(db, 6, {
            "REPRO_CRASH_AT_COMMIT": "2",
            "REPRO_CRASH_POINT": "after_sync",
        })
        survivors = len(_verify_integrity(db))
        # Resume writing on the recovered file: the writer appends after
        # the recovered prefix, and a clean run acknowledges everything.
        acked = _run_writer(db, 3)
        assert len(acked) == 3
        labels = _verify_integrity(db)
        assert len(labels) == survivors + 3


class TestRandomizedKills:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_random_kill_mid_stream(self, tmp_path, seed):
        """SIGKILL at an arbitrary instant preserves the prefix property."""
        db = str(tmp_path / f"r{seed}.db")
        rng = random.Random(seed)
        acked = _run_writer(db, 500, kill_after=rng.uniform(0.05, 1.5))
        labels = _verify_integrity(db)
        recovered = _assert_prefix(labels, acked)
        # Committed-prefix: at most one unacknowledged commit (the one
        # in flight when the signal landed) may surface.
        assert recovered <= len(acked) + 1


class TestGroupCommitCrashPoints:
    """SIGKILL at the group-commit fault points, with concurrent writer
    threads so one fsync genuinely covers several transactions.

    The contract: recovery is all-or-nothing **per transaction** even
    when a single batched fsync covered several — an acknowledged commit
    is always recovered, an unacknowledged one may or may not be, and a
    recovered entry is always whole (both children present), never torn.
    """

    TOTAL = 32
    CRASH_AT = 4

    def _run(self, db_path: str, point: str) -> list[int]:
        return _run_writer(db_path, self.TOTAL, {
            "REPRO_CRASH_AT_COMMIT": str(self.CRASH_AT),
            "REPRO_CRASH_POINT": point,
            "REPRO_CRASH_WRITERS": "4",
        })

    def _verify_threaded(self, db_path: str, acked: list[int]) -> set[int]:
        """Structural integrity plus the per-transaction guarantees."""
        labels = _verify_integrity(db_path)
        recovered = set()
        for label in labels:
            assert label.startswith("e"), label
            recovered.add(int(label[1:]))
        assert len(recovered) == len(labels)  # no duplicate replay
        # Durability: every acknowledged update survived.
        assert set(acked) <= recovered
        with XmlDbms(db_path) as dbms:
            for i in sorted(recovered):
                # Atomicity: a recovered transaction is whole — exactly
                # the two children it inserted, with their text intact.
                assert dbms.query("log", f"/log/e{i}") \
                    == f"<e{i}><a>a{i}</a><b>b{i}</b></e{i}>"
        return recovered

    def test_kill_before_group_fsync(self, tmp_path):
        """Die in the committer before the batch's fsync: nothing in the
        batch was acknowledged, and nothing recovered may be torn."""
        db = str(tmp_path / "g.db")
        acked = self._run(db, "before_group_fsync")
        self._verify_threaded(db, acked)

    def test_kill_mid_batch(self, tmp_path):
        """A torn record over the batch tail: the batch's complete
        transactions replay, the torn remainder is discarded."""
        db = str(tmp_path / "g.db")
        acked = self._run(db, "mid_batch")
        recovered = self._verify_threaded(db, acked)
        # Everything appended before the torn tail was flushed and is
        # complete, so at least the crash-triggering prefix recovers.
        assert len(recovered) >= self.CRASH_AT + 1

    def test_kill_after_group_fsync(self, tmp_path):
        """Die right after the covering fsync, before any write-back or
        ACK: every transaction the fsync covered must be recovered."""
        db = str(tmp_path / "g.db")
        acked = self._run(db, "after_group_fsync")
        recovered = self._verify_threaded(db, acked)
        # The fsync covered at least CRASH_AT+1 appended commits; all of
        # them are durable even though none of the final batch was acked.
        assert len(recovered) >= self.CRASH_AT + 1

    def test_recovered_after_group_crash_stays_updatable(self, tmp_path):
        db = str(tmp_path / "g.db")
        self._run(db, "after_group_fsync")
        survivors = self._verify_threaded(db, [])
        with XmlDbms(db) as dbms:
            free_form = max(survivors) + 1 if survivors else 0
            dbms.update("log", f"insert node <r{free_form}>ok</r{free_form}> "
                               f"as last into /log")
            labels = [n.name for n in dbms.execute("log", "/log/*")]
            assert labels[-1] == f"r{free_form}"


class TestIndexBuildKills:
    """SIGKILL during a ``create_index`` bulk build.

    The registration entry is written only after the build completes,
    so recovery must find either no index at all (orphan pages, intact
    document) or a complete, rescan-consistent one — never a
    half-visible index."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_kill_during_index_build(self, tmp_path, seed):
        from repro.xasr import schema as xasr_schema

        db = str(tmp_path / f"ib{seed}.db")
        rng = random.Random(seed)
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_CRASH_MODE"] = "index-build"
        process = subprocess.Popen(
            [sys.executable, str(WRITER), db, "4000"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        try:
            assert process.stdout is not None
            first = process.stdout.readline()
            assert first.strip() == "READY", first
            time.sleep(rng.uniform(0.0, 0.4))
            process.send_signal(signal.SIGKILL)
            process.communicate(timeout=60)
        except subprocess.TimeoutExpired:  # pragma: no cover - CI guard
            process.kill()
            raise
        with XmlDbms(db) as dbms:
            stored = StoredDocument(dbms.db, "log")
            entries = sum(1 for node in stored.scan()
                          if node.is_element and node.value == "entry")
            assert entries == 4000  # the document survived untouched
            indexes = dbms.indexes("log")
            assert indexes in ([], ["entry"])
            if indexes:  # the build completed before the signal landed
                from tests.test_value_index import assert_index_consistent

                assert_index_consistent(dbms, "log")
            else:
                assert "entry" not in \
                    StoredDocument(dbms.db, "log").value_index_labels
            # Either way the document stays fully usable: query and
            # build (or rebuild) the index on the recovered file.
            if not indexes:
                dbms.create_index("log", "entry")
            hits = dbms.execute(
                "log", 'for $e in //entry return '
                       'if (some $t in $e/text() satisfies '
                       '$t = "value-3") then $e else ()')
            assert len(hits) == 4000 // 7
            assert dbms.db.exists(
                xasr_schema.value_index_name("log", "entry"))
