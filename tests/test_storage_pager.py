"""Pager unit tests: allocation, free list, persistence, header."""

import pytest

from repro.errors import PageError
from repro.storage.pager import Pager


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "pager.db")


class TestAllocation:
    def test_fresh_file_has_header_only(self, path):
        with Pager(path, create=True) as pager:
            assert pager.num_pages == 1

    def test_allocate_returns_sequential_ids(self, path):
        with Pager(path, create=True) as pager:
            assert pager.allocate_page() == 1
            assert pager.allocate_page() == 2

    def test_freed_page_is_reused(self, path):
        with Pager(path, create=True) as pager:
            first = pager.allocate_page()
            second = pager.allocate_page()
            pager.free_page(first)
            assert pager.allocate_page() == first
            assert pager.allocate_page() == second + 1

    def test_free_list_chains(self, path):
        with Pager(path, create=True) as pager:
            pages = [pager.allocate_page() for __ in range(4)]
            for page in pages:
                pager.free_page(page)
            reused = {pager.allocate_page() for __ in range(4)}
            assert reused == set(pages)


class TestReadWrite:
    def test_write_then_read(self, path):
        with Pager(path, create=True, page_size=512) as pager:
            page = pager.allocate_page()
            pager.write_page(page, b"\xab" * 512)
            assert bytes(pager.read_page(page)) == b"\xab" * 512

    def test_wrong_size_write_rejected(self, path):
        with Pager(path, create=True) as pager:
            page = pager.allocate_page()
            with pytest.raises(PageError):
                pager.write_page(page, b"short")

    @pytest.mark.parametrize("bad_id", [0, -1, 999])
    def test_out_of_range_access_rejected(self, path, bad_id):
        with Pager(path, create=True) as pager:
            with pytest.raises(PageError):
                pager.read_page(bad_id)

    def test_io_counters(self, path):
        with Pager(path, create=True) as pager:
            page = pager.allocate_page()
            pager.write_page(page, b"\x00" * pager.page_size)
            pager.read_page(page)
            assert pager.pages_written >= 1
            assert pager.pages_read >= 1


class TestPersistence:
    def test_page_count_survives_reopen(self, path):
        with Pager(path, create=True) as pager:
            for __ in range(5):
                pager.allocate_page()
        with Pager(path) as pager:
            assert pager.num_pages == 6

    def test_data_survives_reopen(self, path):
        with Pager(path, create=True, page_size=512) as pager:
            page = pager.allocate_page()
            pager.write_page(page, b"z" * 512)
            pager.sync()
        with Pager(path) as pager:
            assert bytes(pager.read_page(page)) == b"z" * 512

    def test_page_size_read_from_header(self, path):
        with Pager(path, create=True, page_size=1024):
            pass
        with Pager(path) as pager:
            assert pager.page_size == 1024

    def test_catalog_root_persisted(self, path):
        with Pager(path, create=True) as pager:
            pager.set_catalog_root(7)
        with Pager(path) as pager:
            assert pager.catalog_root == 7

    def test_free_list_survives_reopen(self, path):
        with Pager(path, create=True) as pager:
            page = pager.allocate_page()
            pager.allocate_page()
            pager.free_page(page)
        with Pager(path) as pager:
            assert pager.free_head == page

    def test_non_database_file_rejected(self, path):
        with open(path, "wb") as handle:
            handle.write(b"not a database, definitely" * 100)
        with pytest.raises(PageError):
            Pager(path)
