"""Workload generator tests: determinism, structure, parseability."""

import pytest

from repro.workloads.dblp import DblpConfig, generate_dblp
from repro.workloads.handmade import EDGE_CASE_DOCUMENTS, FIGURE2_XML
from repro.workloads.queries import CORRECTNESS_QUERIES, EFFICIENCY_QUERIES
from repro.workloads.treebank import TreebankConfig, generate_treebank
from repro.xmlkit.parser import parse
from repro.xq.parser import parse_query


class TestDblpGenerator:
    def test_deterministic(self):
        config = DblpConfig(articles=30)
        assert generate_dblp(config) == generate_dblp(config)

    def test_seed_changes_output(self):
        assert generate_dblp(DblpConfig(articles=30, seed=1)) != \
            generate_dblp(DblpConfig(articles=30, seed=2))

    def test_parses_as_xml(self):
        doc = parse(generate_dblp(DblpConfig(articles=20)))
        assert doc.root_element.name == "dblp"

    def test_record_counts(self):
        config = DblpConfig(articles=25, inproceedings=10)
        doc = parse(generate_dblp(config))
        labels = [child.name for child in doc.root_element.children]
        assert labels.count("article") == 25
        assert labels.count("inproceedings") == 10

    def test_structure_is_shallow(self):
        doc = parse(generate_dblp(DblpConfig(articles=10)))

        def depth(node, level=0):
            children = getattr(node, "children", [])
            return max([level] + [depth(child, level + 1)
                                  for child in children])

        assert depth(doc) <= 5

    def test_rare_labels_present(self):
        config = DblpConfig(articles=50, inproceedings=30, errata=4,
                            editors=3)
        text = generate_dblp(config)
        assert text.count("<erratum>") == 4
        assert text.count("<editor>") == 3

    def test_name_pool_bounds_distinct_authors(self):
        config = DblpConfig(articles=100, name_pool=10)
        doc = parse(generate_dblp(config))
        names = {node.string_value()
                 for node in doc.root_element.iter_descendants()
                 if getattr(node, "name", None) == "author"}
        assert len(names) <= 10

    def test_volume_fraction_respected(self):
        config = DblpConfig(articles=200, volume_fraction=0.0)
        assert "<volume>" not in generate_dblp(config)


class TestTreebankGenerator:
    def test_deterministic(self):
        config = TreebankConfig(sentences=10)
        assert generate_treebank(config) == generate_treebank(config)

    def test_parses_and_is_deep(self):
        doc = parse(generate_treebank(TreebankConfig(sentences=30,
                                                     max_depth=16)))

        def depth(node, level=0):
            children = getattr(node, "children", [])
            return max([level] + [depth(child, level + 1)
                                  for child in children])

        assert doc.root_element.name == "FILE"
        assert depth(doc) >= 8

    def test_sentence_count(self):
        doc = parse(generate_treebank(TreebankConfig(sentences=7)))
        assert len(doc.root_element.children) == 7


class TestHandmade:
    def test_figure2_matches_paper(self):
        doc = parse(FIGURE2_XML)
        assert doc.root_element.string_value() == "AnaBobDB"

    @pytest.mark.parametrize("name", sorted(EDGE_CASE_DOCUMENTS))
    def test_edge_cases_parse(self, name):
        parse(EDGE_CASE_DOCUMENTS[name])


class TestQuerySuites:
    def test_sixteen_correctness_queries(self):
        assert len(CORRECTNESS_QUERIES) == 16

    @pytest.mark.parametrize("name", sorted(CORRECTNESS_QUERIES))
    def test_correctness_queries_parse(self, name):
        parse_query(CORRECTNESS_QUERIES[name])

    def test_five_efficiency_queries(self):
        assert len(EFFICIENCY_QUERIES) == 5
        assert [query.name for query in EFFICIENCY_QUERIES] == \
            [f"test-{index}" for index in range(1, 6)]

    @pytest.mark.parametrize("index", range(5))
    def test_efficiency_queries_parse(self, index):
        parse_query(EFFICIENCY_QUERIES[index].xq)

    def test_every_query_documents_its_trap(self):
        assert all(query.trap for query in EFFICIENCY_QUERIES)

    def test_test4_uses_nonexistent_label(self):
        xml = generate_dblp(DblpConfig(articles=50))
        assert "phdthesis" in EFFICIENCY_QUERIES[3].xq
        assert "phdthesis" not in xml
