"""Subprocess writer for the kill -9 crash-recovery harness.

Not a test module — ``tests/test_crash_recovery.py`` runs this script in
a child process and kills it (or lets it kill itself at an injected
fault point), then asserts the database recovers to a committed-prefix
state.

Usage::

    python tests/crash_writer.py <db-path> <total-updates>

Protocol on stdout (line-buffered):

* ``READY`` once the base document is loaded;
* ``ACK <i>`` after update ``i`` has committed (the durability
  acknowledgement the harness holds the system to).

Fault injection via environment variables:

* ``REPRO_CRASH_AT_COMMIT=<k>`` with ``REPRO_CRASH_POINT=...``:

  - ``before_commit`` — SIGKILL self just before the k-th commit writes
    anything: the k-th update must be entirely absent after recovery;
  - ``after_sync``    — SIGKILL self right after the k-th commit's
    fsync returns, before the pages reach the database file and before
    the ACK: the update is durable and recovery must surface it;
  - ``torn_tail``     — append the k-th transaction's page records but
    neither the COMMIT nor a sync, then SIGKILL: recovery must discard
    the torn tail.
"""

from __future__ import annotations

import os
import signal
import sys

BASE_XML = "<log><meta>start</meta></log>"


def _die() -> None:
    sys.stdout.flush()
    os.kill(os.getpid(), signal.SIGKILL)


def _install_fault(crash_at: int, point: str) -> None:
    from repro.storage import wal as walmod

    original = walmod.WriteAheadLog.log_commit
    state = {"commit": 0}

    def patched(self, images):
        commit = state["commit"]
        state["commit"] += 1
        if commit == crash_at:
            if point == "before_commit":
                _die()
            if point == "torn_tail":
                for page_id, image in sorted(images.items()):
                    self._append(walmod._PAGE, page_id, image)
                self._file.flush()
                _die()
        lsn = original(self, images)
        if commit == crash_at and point == "after_sync":
            _die()
        return lsn

    walmod.WriteAheadLog.log_commit = patched


def _index_build_main(db_path: str, entries: int) -> int:
    """Index-build victim: load a document with ``entries`` text-bearing
    <entry> children, announce READY, then build a value index on
    <entry> (the parent SIGKILLs us somewhere inside the build)."""
    from repro.core.dbms import XmlDbms

    dbms = XmlDbms(db_path)
    if "log" not in dbms.documents():
        xml = ("<log><meta>start</meta>"
               + "".join(f"<entry>value-{i % 7}</entry>"
                         for i in range(entries))
               + "</log>")
        dbms.load("log", xml=xml)
    print("READY", flush=True)
    dbms.create_index("log", "entry")
    print("BUILT", flush=True)
    dbms.close()
    print("DONE", flush=True)
    return 0


def main() -> int:
    db_path = sys.argv[1]
    total = int(sys.argv[2])
    if os.environ.get("REPRO_CRASH_MODE") == "index-build":
        return _index_build_main(db_path, total)
    crash_at = int(os.environ.get("REPRO_CRASH_AT_COMMIT", "-1"))
    point = os.environ.get("REPRO_CRASH_POINT", "")
    if point:
        _install_fault(crash_at, point)

    from repro.core.dbms import XmlDbms

    dbms = XmlDbms(db_path)
    if "log" not in dbms.documents():
        dbms.load("log", xml=BASE_XML)
    print("READY", flush=True)
    for i in range(total):
        dbms.update("log",
                    f"insert node <e{i}>v{i}</e{i}> as last into /log")
        print(f"ACK {i}", flush=True)
    dbms.close()
    print("DONE", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
