"""Subprocess writer for the kill -9 crash-recovery harness.

Not a test module — ``tests/test_crash_recovery.py`` runs this script in
a child process and kills it (or lets it kill itself at an injected
fault point), then asserts the database recovers to a committed-prefix
state.

Usage::

    python tests/crash_writer.py <db-path> <total-updates>

Protocol on stdout (line-buffered):

* ``READY`` once the base document is loaded;
* ``ACK <i>`` after update ``i`` has committed durably (the
  acknowledgement the harness holds the system to).

Fault injection via environment variables:

* ``REPRO_CRASH_AT_COMMIT=<k>`` with ``REPRO_CRASH_POINT=...``:

  - ``before_commit`` — SIGKILL self just before the k-th commit writes
    anything: the k-th update must be entirely absent after recovery;
  - ``after_sync``    — SIGKILL self right after the fsync covering the
    k-th commit returns, before the pages reach the database file and
    before the ACK: the update is durable and recovery must surface it;
  - ``torn_tail``     — append the k-th transaction's page records but
    neither the COMMIT nor a sync, then SIGKILL: recovery must discard
    the torn tail.

  Group-commit fault points (fire at the first group fsync once the
  k-th commit has been *appended*; combine with ``REPRO_CRASH_WRITERS``
  so the covering fsync really batches several commits):

  - ``before_group_fsync`` — SIGKILL in the committer right before the
    fsync: none of the batch was acknowledged, so recovery may keep any
    complete commits the OS happened to flush but must never tear one;
  - ``mid_batch``          — append a truncated record over the batch's
    tail, flush, SIGKILL: recovery must replay the batch's complete
    transactions and discard the torn remainder — no torn group;
  - ``after_group_fsync``  — SIGKILL right after the fsync returns,
    before any write-back or ACK: every transaction the fsync covered is
    durable and recovery must surface all of them, whole.

* ``REPRO_CRASH_WRITERS=<n>`` — run ``n`` concurrent writer threads
  (updates are split round-robin; each inserts a two-child subtree so a
  torn transaction is detectable).  ACKs may interleave in any order.
"""

from __future__ import annotations

import os
import signal
import sys
import threading

BASE_XML = "<log><meta>start</meta></log>"

_GROUP_POINTS = frozenset({"before_group_fsync", "mid_batch",
                           "after_group_fsync"})


def _die() -> None:
    sys.stdout.flush()
    os.kill(os.getpid(), signal.SIGKILL)


def _install_fault(crash_at: int, point: str) -> None:
    from repro.storage import wal as walmod

    original_append = walmod.WriteAheadLog.append_commit
    original_sync = walmod.WriteAheadLog.sync
    # ``appended`` is the number of commits fully appended so far; the
    # commit index is 0-based, matching the harness's update numbering
    # for the single-writer tests.
    state = {"appended": 0}

    def patched_append(self, images):
        commit = state["appended"]
        if commit == crash_at:
            if point == "before_commit":
                _die()
            if point == "torn_tail":
                for page_id, image in sorted(images.items()):
                    self._append(walmod._PAGE, page_id, image)
                self._file.flush()
                _die()
        lsn = original_append(self, images)
        state["appended"] = commit + 1
        return lsn

    def patched_sync(self):
        covers_target = crash_at >= 0 and state["appended"] > crash_at
        if covers_target and point == "before_group_fsync":
            # Leave whatever the OS already has; the fsync never happens
            # and nothing in this batch was acknowledged.
            self._file.flush()
            _die()
        if covers_target and point == "mid_batch":
            # A torn record over the batch tail: a PAGE record header
            # that promises a payload the file does not contain.
            self._file.write(walmod._RECORD.pack(self._lsn + 1,
                                                 walmod._PAGE, 1, 0))
            self._file.write(b"\xde\xad" * 8)
            self._file.flush()
            _die()
        original_sync(self)
        if covers_target and point in ("after_sync", "after_group_fsync"):
            _die()

    walmod.WriteAheadLog.append_commit = patched_append
    walmod.WriteAheadLog.sync = patched_sync


def _index_build_main(db_path: str, entries: int) -> int:
    """Index-build victim: load a document with ``entries`` text-bearing
    <entry> children, announce READY, then build a value index on
    <entry> (the parent SIGKILLs us somewhere inside the build)."""
    from repro.core.dbms import XmlDbms

    dbms = XmlDbms(db_path)
    if "log" not in dbms.documents():
        xml = ("<log><meta>start</meta>"
               + "".join(f"<entry>value-{i % 7}</entry>"
                         for i in range(entries))
               + "</log>")
        dbms.load("log", xml=xml)
    print("READY", flush=True)
    dbms.create_index("log", "entry")
    print("BUILT", flush=True)
    dbms.close()
    print("DONE", flush=True)
    return 0


def _threaded_main(dbms, total: int, writers: int) -> None:
    """Concurrent writers: update ``i`` runs on thread ``i % writers``.

    Each update inserts a *two-child* subtree, so the recovery check can
    tell a torn transaction (element present, children missing) from a
    rolled-back one (element absent).
    """
    ack_lock = threading.Lock()

    def run(worker: int) -> None:
        for i in range(worker, total, writers):
            dbms.update(
                "log",
                f"insert node <e{i}><a>a{i}</a><b>b{i}</b></e{i}> "
                f"as last into /log")
            with ack_lock:
                print(f"ACK {i}", flush=True)

    threads = [threading.Thread(target=run, args=(w,), daemon=True)
               for w in range(writers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def main() -> int:
    db_path = sys.argv[1]
    total = int(sys.argv[2])
    if os.environ.get("REPRO_CRASH_MODE") == "index-build":
        return _index_build_main(db_path, total)
    crash_at = int(os.environ.get("REPRO_CRASH_AT_COMMIT", "-1"))
    point = os.environ.get("REPRO_CRASH_POINT", "")
    writers = int(os.environ.get("REPRO_CRASH_WRITERS", "0"))
    if point:
        _install_fault(crash_at, point)

    from repro.core.dbms import XmlDbms

    dbms = XmlDbms(db_path)
    if "log" not in dbms.documents():
        dbms.load("log", xml=BASE_XML)
    print("READY", flush=True)
    if writers > 1:
        _threaded_main(dbms, total, writers)
    else:
        for i in range(total):
            dbms.update("log",
                        f"insert node <e{i}>v{i}</e{i}> as last into /log")
            print(f"ACK {i}", flush=True)
    dbms.close()
    print("DONE", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
