"""Unit tests for the streaming XML tokenizer."""

import pytest

from repro.errors import XmlError
from repro.xmlkit.events import (
    Characters,
    EndDocument,
    EndElement,
    StartDocument,
    StartElement,
)
from repro.xmlkit.tokenizer import iterparse


def events_of(text):
    return list(iterparse(text))


def kinds(text):
    return [type(event).__name__ for event in events_of(text)]


class TestBasicDocuments:
    def test_single_empty_element(self):
        assert kinds("<a/>") == ["StartDocument", "StartElement",
                                 "EndElement", "EndDocument"]

    def test_open_close_pair(self):
        assert kinds("<a></a>") == ["StartDocument", "StartElement",
                                    "EndElement", "EndDocument"]

    def test_element_names_are_reported(self):
        events = events_of("<root><child/></root>")
        starts = [event.name for event in events
                  if isinstance(event, StartElement)]
        assert starts == ["root", "child"]

    def test_text_content(self):
        events = events_of("<a>hello</a>")
        texts = [event.text for event in events
                 if isinstance(event, Characters)]
        assert texts == ["hello"]

    def test_nested_structure_order(self):
        events = events_of("<a><b>x</b><c/></a>")
        trace = []
        for event in events:
            if isinstance(event, StartElement):
                trace.append(f"<{event.name}>")
            elif isinstance(event, EndElement):
                trace.append(f"</{event.name}>")
            elif isinstance(event, Characters):
                trace.append(event.text)
        assert trace == ["<a>", "<b>", "x", "</b>", "<c>", "</c>", "</a>"]

    def test_whitespace_between_elements_is_characters(self):
        events = events_of("<a> <b/> </a>")
        texts = [event.text for event in events
                 if isinstance(event, Characters)]
        assert texts == [" ", " "]

    def test_document_events_bracket_everything(self):
        events = events_of("<a/>")
        assert isinstance(events[0], StartDocument)
        assert isinstance(events[-1], EndDocument)


class TestAttributes:
    def test_single_attribute(self):
        event = events_of('<a x="1"/>')[1]
        assert event.attributes == (("x", "1"),)

    def test_multiple_attributes_preserve_order(self):
        event = events_of('<a x="1" y="2" z="3"/>')[1]
        assert [name for name, __ in event.attributes] == ["x", "y", "z"]

    def test_single_quoted_values(self):
        event = events_of("<a x='v'/>")[1]
        assert event.get("x") == "v"

    def test_get_returns_default_for_missing(self):
        event = events_of("<a/>")[1]
        assert event.get("nope", "dflt") == "dflt"

    def test_entity_in_attribute_value(self):
        event = events_of('<a x="a&amp;b"/>')[1]
        assert event.get("x") == "a&b"

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(XmlError):
            events_of('<a x="1" x="2"/>')

    def test_unquoted_value_rejected(self):
        with pytest.raises(XmlError):
            events_of("<a x=1/>")


class TestEntitiesAndCData:
    def test_predefined_entities(self):
        events = events_of("<a>&lt;&gt;&amp;&apos;&quot;</a>")
        text = "".join(event.text for event in events
                       if isinstance(event, Characters))
        assert text == "<>&'\""

    def test_decimal_character_reference(self):
        events = events_of("<a>&#65;</a>")
        assert events[2].text == "A"

    def test_hex_character_reference(self):
        events = events_of("<a>&#x41;</a>")
        assert events[2].text == "A"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XmlError):
            events_of("<a>&nosuch;</a>")

    def test_cdata_is_literal(self):
        events = events_of("<a><![CDATA[<not> &markup;]]></a>")
        assert events[2].text == "<not> &markup;"

    def test_adjacent_text_and_cdata_coalesce(self):
        events = events_of("<a>x<![CDATA[y]]>z</a>")
        texts = [event for event in events
                 if isinstance(event, Characters)]
        assert len(texts) == 1
        assert texts[0].text == "xyz"


class TestSkippedMarkup:
    def test_comment_is_skipped(self):
        assert kinds("<a><!-- hi --></a>") == [
            "StartDocument", "StartElement", "EndElement", "EndDocument"]

    def test_processing_instruction_skipped(self):
        assert kinds("<?xml version='1.0'?><a/>") == [
            "StartDocument", "StartElement", "EndElement", "EndDocument"]

    def test_doctype_skipped(self):
        assert kinds("<!DOCTYPE a><a/>") == [
            "StartDocument", "StartElement", "EndElement", "EndDocument"]

    def test_doctype_with_internal_subset(self):
        text = "<!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><a/>"
        assert kinds(text)[-1] == "EndDocument"

    def test_comment_splits_text_into_two_events(self):
        events = events_of("<a>x<!-- c -->y</a>")
        texts = [event.text for event in events
                 if isinstance(event, Characters)]
        assert texts == ["x", "y"]


class TestMalformedInput:
    @pytest.mark.parametrize("text", [
        "", "   ", "<a>", "<a></b>", "</a>", "<a><b></a></b>",
        "<a/><b/>", "text only", "<a>&unterminated", "<a x=></a>",
        "<a><!-- unterminated</a>", "<a><![CDATA[x</a>",
    ])
    def test_rejected(self, text):
        with pytest.raises(XmlError):
            events_of(text)

    def test_error_carries_position(self):
        with pytest.raises(XmlError) as excinfo:
            events_of("<a>\n  </b>")
        assert excinfo.value.line == 2

    def test_mismatched_tag_message_names_both(self):
        with pytest.raises(XmlError, match="mismatched"):
            events_of("<outer></inner>")


class TestPositions:
    def test_start_element_line_column(self):
        events = events_of("<a>\n<b/></a>")
        b_event = [event for event in events
                   if isinstance(event, StartElement)][1]
        assert (b_event.line, b_event.column) == (2, 1)
