"""Tests for the XQ lexer/parser, desugaring, and unparser."""

import pytest

from repro.errors import XQSyntaxError
from repro.xq.ast import (
    And,
    Axis,
    Constr,
    Empty,
    For,
    If,
    LabelTest,
    Or,
    ROOT_VAR,
    Sequence,
    Some,
    Step,
    TextLiteral,
    TextTest,
    TrueCond,
    Var,
    WildcardTest,
    contains_constructor,
    free_variables,
    query_size,
)
from repro.xq.parser import parse_query
from repro.xq.pretty import unparse


class TestGrammarProductions:
    """Every production of Figure 1 parses to its AST form."""

    def test_empty(self):
        assert parse_query("()") == Empty()

    def test_variable(self):
        assert parse_query("$x") == Var("x")

    def test_child_step(self):
        assert parse_query("$x/a") == Step("x", Axis.CHILD, LabelTest("a"))

    def test_descendant_step(self):
        assert parse_query("$x//a") == Step("x", Axis.DESCENDANT,
                                            LabelTest("a"))

    def test_explicit_axes(self):
        assert parse_query("$x/child::a") == parse_query("$x/a")
        assert parse_query("$x/descendant::a") == parse_query("$x//a")

    def test_wildcard_test(self):
        assert parse_query("$x/*") == Step("x", Axis.CHILD, WildcardTest())

    def test_text_test(self):
        assert parse_query("$x/text()") == Step("x", Axis.CHILD, TextTest())

    def test_for_expression(self):
        query = parse_query("for $y in $x/a return $y")
        assert query == For("y", Step("x", Axis.CHILD, LabelTest("a")),
                            Var("y"))

    def test_if_expression(self):
        query = parse_query("if (true()) then $x")
        assert query == If(TrueCond(), Var("x"))

    def test_if_with_empty_else(self):
        assert parse_query("if (true()) then $x else ()") == \
            parse_query("if (true()) then $x")

    def test_constructor_empty(self):
        assert parse_query("<a/>") == Constr("a", Empty())

    def test_constructor_with_expression(self):
        assert parse_query("<a>{ $x }</a>") == Constr("a", Var("x"))

    def test_constructor_literal_text(self):
        assert parse_query("<a>hello</a>") == Constr("a",
                                                     TextLiteral("hello"))

    def test_nested_constructors(self):
        query = parse_query("<a><b/></a>")
        assert query == Constr("a", Constr("b", Empty()))

    def test_sequence(self):
        assert parse_query("$x, $y") == Sequence(Var("x"), Var("y"))

    def test_conditions_full_set(self):
        text = ("if ($a = $b and $a = \"s\" or not(true()) or "
                "some $t in $x/text() satisfies true()) then ()")
        query = parse_query(text)
        assert isinstance(query, If)
        assert isinstance(query.cond, Or)

    def test_and_or_precedence(self):
        query = parse_query('if ($a = $b or $a = $b and true()) then ()')
        # 'and' binds tighter than 'or'.
        assert isinstance(query.cond, Or)
        assert isinstance(query.cond.right, And)


class TestDesugaring:
    def test_absolute_path_uses_root(self):
        query = parse_query("/journal")
        assert query == Step(ROOT_VAR, Axis.CHILD, LabelTest("journal"))

    def test_absolute_descendant(self):
        query = parse_query("//article")
        assert query == Step(ROOT_VAR, Axis.DESCENDANT,
                             LabelTest("article"))

    def test_multi_step_for_becomes_nested_fors(self):
        query = parse_query("for $y in $x/a/b return $y")
        assert isinstance(query, For)
        assert query.source.test == LabelTest("a")
        assert isinstance(query.body, For)
        assert query.body.var == "y"
        assert query.body.source.test == LabelTest("b")

    def test_multi_step_path_query(self):
        query = parse_query("$x/a/b")
        assert isinstance(query, For)
        assert isinstance(query.body, Step)

    def test_multi_step_some(self):
        query = parse_query(
            "if (some $t in $x/a/text() satisfies true()) then ()")
        assert isinstance(query.cond, Some)
        assert isinstance(query.cond.cond, Some)
        assert query.cond.cond.var == "t"

    def test_fresh_variables_unwritable(self):
        query = parse_query("for $y in $x/a/b return $y")
        assert query.var.startswith("#")

    def test_bare_slash_rejected(self):
        with pytest.raises(XQSyntaxError):
            parse_query("/")


class TestSyntaxErrors:
    @pytest.mark.parametrize("text", [
        "", "for $x return $x", "for $x in $y", "$", "$for",
        "if true() then ()", "if (true()) then", "<a>{</a>",
        "<a></b>", "$x/", "$x/unknownaxis::a", "some $x in $y",
        "$x = $y", "for $x in $y return $x extra",
        "if ($x = ) then ()", "(: unclosed",
    ])
    def test_rejected(self, text):
        with pytest.raises(XQSyntaxError):
            parse_query(text)

    def test_comments_are_skipped(self):
        assert parse_query("(: c :) $x (: d :)") == Var("x")

    def test_error_position_reported(self):
        with pytest.raises(XQSyntaxError) as excinfo:
            parse_query("for $x in\n  $y")
        assert excinfo.value.line == 2


class TestUnparseRoundTrip:
    @pytest.mark.parametrize("text", [
        "()",
        "$x",
        "$x/child::a",
        "$x/descendant::*",
        "$x/child::text()",
        "for $y in $x/child::a return $y",
        "if (true()) then <yes/>",
        'if ($a = "s") then $a',
        "if ($a = $b) then ()",
        "if (some $t in $x/child::text() satisfies true()) then $x",
        "if (not(($a = $b and true()))) then ()",
        "<out>{ $x, $y }</out>",
        "<names>{ for $n in $j/descendant::name return $n }</names>",
    ])
    def test_round_trip(self, text):
        first = parse_query(text)
        assert parse_query(unparse(first)) == first

    def test_round_trip_with_desugared_paths(self):
        query = parse_query("for $y in /a/b//c return $y")
        assert parse_query(unparse(query)) == query


class TestAstHelpers:
    def test_free_variables_of_for(self):
        query = parse_query("for $y in $x/a return $y, $z")
        assert free_variables(query) == {"x", "z"}

    def test_for_variable_is_bound(self):
        query = parse_query("for $y in $x/a return $y")
        assert "y" not in free_variables(query)

    def test_some_variable_is_bound(self):
        cond = parse_query(
            "if (some $t in $x/text() satisfies $t = $u) then ()").cond
        assert free_variables(cond) == {"x", "u"}

    def test_contains_constructor(self):
        assert contains_constructor(parse_query("<a/>"))
        assert contains_constructor(
            parse_query("for $x in $y/a return <b/>"))
        assert not contains_constructor(
            parse_query("for $x in $y/a return $x"))

    def test_query_size_counts_nodes(self):
        assert query_size(parse_query("$x")) == 1
        assert query_size(parse_query("for $y in $x/a return $y")) == 3
