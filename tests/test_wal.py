"""Write-ahead log, transactions, recovery, and the hardened pager header."""

from __future__ import annotations

import struct

import pytest

from repro.errors import (
    BTreeError,
    BufferPoolError,
    PageError,
    StorageError,
    WalError,
)
from repro.storage.btree import BTree
from repro.storage.buffer import BufferPool
from repro.storage.db import Database
from repro.storage.pager import Pager
from repro.storage.wal import WriteAheadLog, recover


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "wal.db")


class TestPagerHeaderHardening:
    """Satellite bugfix: corrupt files must raise clean StorageErrors."""

    def test_truncated_file(self, path):
        with open(path, "wb") as handle:
            handle.write(b"XY")
        with pytest.raises(PageError, match="wal.db"):
            Database.open(path)

    def test_garbage_magic(self, path):
        with open(path, "wb") as handle:
            handle.write(b"Z" * 4096)
        with pytest.raises(PageError, match="not an XML-DBMS file"):
            Database.open(path)

    def test_zero_page_size(self, path):
        # Used to escape as a raw struct.error from deep inside the
        # B+-tree layer; must be a StorageError naming the file.
        header = struct.Struct(">8sIIII").pack(b"XMLDBMS1", 0, 5, 0, 0)
        with open(path, "wb") as handle:
            handle.write(header + b"\x00" * 100)
        with pytest.raises(StorageError, match="wal.db"):
            Database.open(path)

    def test_zero_num_pages(self, path):
        header = struct.Struct(">8sIIII").pack(b"XMLDBMS1", 4096, 0, 0, 0)
        with open(path, "wb") as handle:
            handle.write(header + b"\x00" * 100)
        with pytest.raises(StorageError, match="num_pages"):
            Database.open(path)

    def test_valid_file_still_opens(self, path):
        with Database.create(path) as db:
            db.put_meta("m", {"x": 1})
        with Database.open(path) as db:
            assert db.get_meta("m") == {"x": 1}


class TestBTreeDelete:
    @pytest.fixture
    def tree(self, path):
        pager = Pager(path, create=True, page_size=512)
        pool = BufferPool(pager, capacity=64)
        tree = BTree.create(pool)
        yield tree
        pager.close()

    def test_delete_and_reinsert(self, tree):
        for i in range(100):
            tree.insert(f"k{i:04d}".encode(), b"v")
        assert tree.delete(b"k0042")
        assert tree.search(b"k0042") is None
        assert len(tree) == 99
        tree.insert(b"k0042", b"w")
        assert tree.search(b"k0042") == b"w"

    def test_delete_missing_raises(self, tree):
        tree.insert(b"a", b"1")
        with pytest.raises(BTreeError):
            tree.delete(b"zzz")
        assert tree.delete(b"zzz", missing_ok=True) is False

    def test_scan_skips_emptied_leaves(self, tree):
        keys = [f"k{i:04d}".encode() for i in range(300)]
        for key in keys:
            tree.insert(key, b"v")
        # Empty a whole middle region (spanning at least one leaf).
        for key in keys[100:200]:
            tree.delete(key)
        remaining = [key for key, __ in tree.items()]
        assert remaining == keys[:100] + keys[200:]
        assert len(tree) == 200

    def test_delete_first_key_of_leaf_keeps_routing(self, tree):
        keys = [f"k{i:04d}".encode() for i in range(300)]
        for key in keys:
            tree.insert(key, b"v")
        for key in keys:
            assert tree.delete(key)
        assert list(tree.items()) == []
        tree.insert(b"new", b"v")
        assert tree.search(b"new") == b"v"


class TestTransactions:
    def test_commit_persists(self, path):
        with Database.create(path) as db:
            with db.transaction():
                tree = db.create_btree("t")
                tree.insert(b"k", b"v")
        with Database.open(path) as db:
            assert db.open_btree("t").search(b"k") == b"v"

    def test_abort_rolls_back(self, path):
        with Database.create(path) as db:
            with db.transaction():
                db.create_btree("t")
            with pytest.raises(RuntimeError):
                with db.transaction():
                    db.open_btree("t").insert(b"k", b"v")
                    db.put_meta("meta", {"seen": True})
                    raise RuntimeError("boom")
            assert db.open_btree("t").search(b"k") is None
            assert db.get_meta("meta") is None

    def test_nested_transaction_joins_outer(self, path):
        with Database.create(path) as db:
            with db.transaction():
                tree = db.create_btree("t")
                with db.transaction():
                    tree.insert(b"inner", b"v")
            assert db.open_btree("t").search(b"inner") == b"v"

    def test_no_steal_overflow_raises_and_aborts(self, path):
        with Database.create(path, buffer_capacity=8) as db:
            tree = db.create_btree("t")
            with pytest.raises(BufferPoolError, match="buffer_capacity"):
                with db.transaction():
                    for i in range(2000):
                        tree.insert(f"key{i:06d}".encode(), b"x" * 64)
            # The abort rolled everything back and the db still works.
            fresh = db.open_btree("t")
            assert len(fresh) == 0
            fresh.insert(b"after", b"v")
            assert fresh.search(b"after") == b"v"

    def test_flush_inside_transaction_refused(self, path):
        with Database.create(path) as db:
            with pytest.raises(BufferPoolError):
                with db.transaction():
                    db.buffer_pool.flush()

    def test_checkpoint_interval_resets_log(self, path):
        with Database.create(path, checkpoint_interval=2) as db:
            tree = db.create_btree("t")
            with db.transaction():
                tree.insert(b"a", b"1")
            assert db._wal.commits_since_checkpoint == 1
            with db.transaction():
                tree.insert(b"b", b"2")
            assert db._wal.commits_since_checkpoint == 0  # checkpointed

    def test_wal_disabled_still_works(self, path):
        with Database(path, create=True, wal=False) as db:
            with db.transaction():
                db.create_btree("t").insert(b"k", b"v")
        with Database(path, wal=False) as db:
            assert db.open_btree("t").search(b"k") == b"v"


class TestRecovery:
    def _committed_but_not_written_back(self, path):
        """Create a database whose last transaction exists only in the
        WAL: commit the transaction, then undo the write-back by
        restoring the pre-transaction page images (the WAL still holds
        the commit, exactly as if the process died mid write-back)."""
        db = Database.create(path)
        tree = db.create_btree("t")
        tree.insert(b"base", b"0")
        db.checkpoint()
        before = open(path, "rb").read()
        with db.transaction():
            tree.insert(b"committed", b"1")
        # Simulate the crash: pre-transaction file content, current WAL.
        wal_bytes = open(path + ".wal", "rb").read()
        db.pager._file.close()
        db._wal.close()
        with open(path, "wb") as handle:
            handle.write(before)
        with open(path + ".wal", "wb") as handle:
            handle.write(wal_bytes)

    def test_replay_restores_committed_transaction(self, path):
        self._committed_but_not_written_back(path)
        with Database.open(path) as db:
            assert db.last_recovery is not None
            assert db.last_recovery.transactions_replayed == 1
            tree = db.open_btree("t")
            assert tree.search(b"committed") == b"1"
            assert tree.search(b"base") == b"0"

    def test_recovery_is_idempotent(self, path):
        self._committed_but_not_written_back(path)
        first = recover(path)
        assert first.transactions_replayed == 1
        second = recover(path)
        assert second.transactions_replayed == 0
        with Database.open(path) as db:
            assert db.open_btree("t").search(b"committed") == b"1"

    def test_torn_tail_discarded(self, path):
        self._committed_but_not_written_back(path)
        with open(path + ".wal", "ab") as handle:
            handle.write(b"torn garbage bytes")
        report = recover(path)
        assert report.transactions_replayed == 1
        assert report.tail_discarded == len(b"torn garbage bytes")

    def test_uncommitted_pages_discarded(self, path):
        # Page records with no COMMIT: the transaction never happened.
        with Database.create(path) as db:
            db.create_btree("t")
        wal = WriteAheadLog(path + ".wal", 4096)
        wal._append(1, 5, b"\x42" * 4096)  # PAGE record, no COMMIT
        wal.sync()
        wal.close()
        report = recover(path)
        assert report.transactions_replayed == 0
        assert report.tail_discarded > 0
        with Database.open(path) as db:
            assert db.open_btree("t") is not None

    def test_empty_wal_is_clean(self, path):
        with Database.create(path) as db:
            db.create_btree("t")
        with Database.open(path) as db:
            assert db.last_recovery is not None
            assert db.last_recovery.clean

    def test_corrupt_wal_header_raises(self, path):
        with Database.create(path) as db:
            db.create_btree("t")
        with open(path + ".wal", "wb") as handle:
            handle.write(b"NOTAWAL!" + b"\x00" * 100)
        with pytest.raises(WalError):
            recover(path)

    def test_open_with_wal_disabled_still_recovers(self, path):
        # Regression: wal=False must not skip (or delete) a log holding
        # the only copy of acknowledged commits.
        self._committed_but_not_written_back(path)
        with Database(path, wal=False) as db:
            assert db.last_recovery is not None
            assert db.last_recovery.transactions_replayed == 1
            assert db.open_btree("t").search(b"committed") == b"1"

    def test_create_discards_stale_wal(self, path):
        self._committed_but_not_written_back(path)
        with Database.create(path) as db:  # fresh file, stale log
            assert not db.exists("t")
        with Database.open(path) as db:
            assert db.last_recovery.clean
