"""Engine integration tests: the correctness matrix of Section 4.

Every engine (four milestones + the five Figure-7 profiles) must produce
byte-identical results to the milestone-1 oracle on the 16-query
correctness suite, on all four documents.
"""

import pytest

from repro.engine.profiles import ENGINE_PROFILES
from repro.errors import ReproError, ResourceLimitExceeded
from repro.workloads.queries import CORRECTNESS_QUERIES

ALL_PROFILES = sorted(ENGINE_PROFILES)
DOCUMENTS = ["fig2", "dblp", "treebank", "edge"]


class TestCorrectnessMatrix:
    @pytest.mark.parametrize("profile",
                             [name for name in ALL_PROFILES
                              if name != "m1"])
    @pytest.mark.parametrize("document", DOCUMENTS)
    def test_engine_matches_oracle(self, loaded, profile, document):
        for name, xq in CORRECTNESS_QUERIES.items():
            expected = loaded.query(document, xq, profile="m1")
            actual = loaded.query(document, xq, profile=profile)
            assert actual == expected, (profile, document, name)


class TestEngineFacade:
    def test_unknown_profile_rejected(self, fig2):
        with pytest.raises(ReproError):
            fig2.query("fig2", "()", profile="engine-99")

    def test_profile_object_accepted(self, fig2):
        profile = ENGINE_PROFILES["m4"]
        assert fig2.query("fig2", "//name", profile=profile) == \
            "<name>Ana</name><name>Bob</name>"

    def test_execute_returns_nodes(self, fig2):
        nodes = fig2.execute("fig2", "//name")
        assert [node.name for node in nodes] == ["name", "name"]

    def test_pretty_output(self, fig2):
        text = fig2.query("fig2", "//authors", indent=2)
        assert "\n" in text

    def test_explain_algebraic(self, fig2):
        text = fig2.explain("fig2", "//name", profile="m4")
        assert "relfor" in text
        assert "plan for" in text

    def test_explain_non_algebraic(self, fig2):
        text = fig2.explain("fig2", "//name", profile="m2")
        assert "navigational" in text

    def test_ast_input_accepted(self, fig2):
        from repro.xq.parser import parse_query

        ast = parse_query("//title")
        assert fig2.query("fig2", ast) == "<title>DB</title>"


class TestResourceLimits:
    def test_time_limit_enforced_on_algebraic(self, loaded):
        query = ("for $x in //author return for $y in //author return "
                 "for $z in //author return <t/>")
        with pytest.raises(ResourceLimitExceeded) as excinfo:
            loaded.query("dblp", query, profile="engine-5",
                         time_limit=0.05)
        assert excinfo.value.kind == "time"

    def test_time_limit_enforced_on_navigational(self, loaded):
        query = ("for $x in //author return for $y in //author return "
                 "for $z in //author return <t/>")
        with pytest.raises(ResourceLimitExceeded):
            loaded.query("dblp", query, profile="m2", time_limit=0.05)

    def test_memory_budget_enforced(self, loaded):
        query = ("for $x in //author return for $y in //author "
                 "return <t/>")
        with pytest.raises(ResourceLimitExceeded) as excinfo:
            loaded.query("dblp", query, profile="engine-5",
                         memory_budget=1024)
        assert excinfo.value.kind == "memory"

    def test_generous_limits_do_not_interfere(self, fig2):
        assert fig2.query("fig2", "//name", profile="m4",
                          time_limit=60.0,
                          memory_budget=10**8)


class TestXmlDbmsLifecycle:
    def test_documents_listing(self, loaded):
        assert set(loaded.documents()) == {"fig2", "dblp", "treebank",
                                           "edge"}

    def test_statistics_accessor(self, loaded):
        stats = loaded.statistics("fig2")
        assert stats.total_nodes == 9

    def test_drop_document(self, loaded):
        loaded.drop("edge")
        assert "edge" not in loaded.documents()
        with pytest.raises(ReproError):
            loaded.query("edge", "//a")

    def test_drop_missing_document(self, loaded):
        with pytest.raises(ReproError):
            loaded.drop("ghost")

    def test_persistence_across_reopen(self, tmp_path):
        from repro.core.dbms import XmlDbms
        from repro.workloads.handmade import FIGURE2_XML

        path = str(tmp_path / "persist.db")
        with XmlDbms(path) as dbms:
            dbms.load("d", xml=FIGURE2_XML)
        with XmlDbms(path) as dbms:
            assert dbms.documents() == ["d"]
            assert dbms.query("d", "//title") == "<title>DB</title>"

    def test_engine_cache_reused(self, fig2):
        first = fig2.engine("fig2", "m4")
        second = fig2.engine("fig2", "m4")
        assert first is second

    def test_buffer_stats_exposed(self, fig2):
        fig2.reset_buffer_stats()
        fig2.query("fig2", "//name")
        assert fig2.buffer_stats.accesses > 0


class TestMilestoneBehaviour:
    def test_m2_does_less_io_than_full_scan_for_point_query(self, loaded):
        """Milestone 2's promise: only needed nodes are fetched."""
        loaded.reset_buffer_stats()
        loaded.query("dblp", "/dblp/article", profile="m2")
        navigational = loaded.buffer_stats.accesses
        assert navigational > 0

    def test_m4_beats_m3_on_selective_query(self, loaded):
        """The index makes the selective query cheaper in page
        accesses."""
        query = "for $x in //erratum return $x"
        loaded.reset_buffer_stats()
        loaded.query("dblp", query, profile="m3")
        m3_io = loaded.buffer_stats.accesses
        loaded.reset_buffer_stats()
        loaded.query("dblp", query, profile="m4")
        m4_io = loaded.buffer_stats.accesses
        assert m4_io < m3_io

    def test_unmerged_inner_relfor_reevaluates(self, loaded):
        """The paper's strict-merging consequence: with a constructor
        between the loops, results stay correct (and inner work repeats
        per binding)."""
        query = ("for $x in //article return "
                 "<entry>{ for $v in $x/volume return $v }</entry>")
        expected = loaded.query("dblp", query, profile="m1")
        assert loaded.query("dblp", query, profile="m4") == expected
        assert "<entry/>" in expected  # volume-less articles still emit
