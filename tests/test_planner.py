"""Planner tests: access-path selection, join ordering, order
strategies, semijoin legality, estimator calibrations, cost model."""

import pytest

from repro.engine.algebraic import AlgebraicEvaluator, _iter_relfors
from repro.optimizer.cost import CostModel, Costed
from repro.optimizer.planner import Planner, PlannerConfig
from repro.optimizer.stats import CardinalityEstimator
from repro.physical.operators import (
    FullScan,
    LabelIndexScan,
    PrimaryRangeScan,
    SemiJoin,
)
from repro.xasr import StoredDocument, load_document
from repro.xasr.loader import DocumentStatistics
from repro.xq.parser import parse_query
from repro.workloads.dblp import DblpConfig, generate_dblp


@pytest.fixture
def dblp_doc(database):
    xml = generate_dblp(DblpConfig(articles=40, inproceedings=15,
                                   name_pool=12, errata=2, editors=2,
                                   volume_fraction=0.2))
    load_document(database, "dblp", xml=xml)
    return StoredDocument(database, "dblp")


def plan_text(doc, query, config=None):
    evaluator = AlgebraicEvaluator(doc, config=config or PlannerConfig())
    return evaluator.explain(parse_query(query))


def first_plan(doc, query, config=None):
    evaluator = AlgebraicEvaluator(doc, config=config or PlannerConfig())
    tpm = evaluator.compile(parse_query(query))
    relfor = next(_iter_relfors(tpm))
    return evaluator.plan_for(relfor)


class TestAccessPathSelection:
    def test_rare_label_uses_index(self, dblp_doc):
        text = plan_text(dblp_doc, "for $x in //erratum return $x")
        assert "LabelIndexScan" in text

    def test_common_label_prefers_full_scan(self, dblp_doc):
        # 'author' covers ~25% of the relation; fetch-per-match makes the
        # index more expensive than one sequential scan.
        text = plan_text(dblp_doc, "for $x in //author return $x")
        assert "FullScan" in text

    def test_label_index_disabled_by_config(self, dblp_doc):
        config = PlannerConfig(use_label_index=False)
        text = plan_text(dblp_doc, "for $x in //erratum return $x",
                         config)
        assert "LabelIndexScan" not in text

    def test_descendant_of_variable_uses_range_probe(self, dblp_doc):
        text = plan_text(
            dblp_doc,
            "for $x in //erratum return for $y in $x//note return $y")
        assert "PrimaryRangeScan" in text

    def test_child_axis_uses_child_lookup(self, dblp_doc):
        text = plan_text(
            dblp_doc,
            "for $x in //erratum return for $y in $x/note return $y")
        assert "ChildLookup" in text

    def test_no_inl_join_falls_back_to_nlj(self, dblp_doc):
        config = PlannerConfig(use_inl_join=False, use_parent_index=False,
                               use_primary_range=False)
        text = plan_text(
            dblp_doc,
            "for $x in //erratum return for $y in $x/note return $y",
            config)
        assert "NestedLoopsJoin" in text
        assert "Materialize" in text


class TestOrderStrategies:
    QUERY = ("for $x in //article return for $y in $x/author return $y")

    def test_preserve_strategy_one_pass_dedup(self, dblp_doc):
        config = PlannerConfig(order_strategy="preserve")
        text = plan_text(dblp_doc, self.QUERY, config)
        assert "dedup=one-pass" in text
        assert "ExternalSort" not in text

    def test_sort_strategy_adds_external_sort(self, dblp_doc):
        config = PlannerConfig(order_strategy="sort")
        text = plan_text(dblp_doc, self.QUERY, config)
        assert "ExternalSort" in text

    def test_syntactic_reorder_safe_prefix_preserves(self, dblp_doc):
        config = PlannerConfig(join_reorder="syntactic",
                               cost_based=False)
        text = plan_text(dblp_doc, self.QUERY, config)
        assert "ExternalSort" not in text

    def test_bindings_stream_in_document_order(self, dblp_doc):
        for strategy in ("preserve", "sort"):
            config = PlannerConfig(order_strategy=strategy)
            evaluator = AlgebraicEvaluator(dblp_doc, config=config)
            from repro.physical.context import Bindings, ExecutionContext

            tpm = evaluator.compile(parse_query(self.QUERY))
            relfor = next(_iter_relfors(tpm))
            plan = evaluator.plan_for(relfor)
            ctx = ExecutionContext(dblp_doc)
            rows = list(plan.execute(
                ctx, Bindings({"#root": dblp_doc.root()})))
            keys = [tuple(node.in_ for node in row) for row in rows]
            assert keys == sorted(set(keys)), strategy


class TestSemijoin:
    EXISTS_QUERY = ("for $x in //article return "
                    "if (some $v in $x/volume satisfies true()) "
                    "then for $y in $x//author return $y else ()")

    def test_example6_volume_drives_the_plan(self, dblp_doc):
        """Example 6's point: 'only those articles that have volumes are
        checked for authors'.  The optimizer realizes this either with a
        semijoin (QP2's projection pushing) or by reordering so the
        volume relation drives; both put V before the author join."""
        text = plan_text(dblp_doc, self.EXISTS_QUERY)
        assert "SemiJoin" in text or \
            text.index("'volume'") < text.index("'author'")

    def test_example6_preserve_strategy_uses_semijoin(self, dblp_doc):
        """Under the order-preserving strategy the vartuple aliases must
        lead, so the volume check becomes an explicit semijoin —
        Figure 6's 'the innermost join and this projection simulate now
        a semijoin'."""
        config = PlannerConfig(order_strategy="preserve")
        text = plan_text(dblp_doc, self.EXISTS_QUERY, config)
        assert "SemiJoin" in text

    def test_semijoin_disabled(self, dblp_doc):
        config = PlannerConfig(use_semijoin=False)
        text = plan_text(dblp_doc, self.EXISTS_QUERY, config)
        assert "SemiJoin" not in text

    def test_semijoin_illegal_when_alias_needed_later(self, dblp_doc):
        # $v's text is compared later through a some-chain: V's relation
        # column is needed, so it must not be semijoined away.
        query = ("for $x in //article return "
                 "if (some $v in $x/volume/text() satisfies $v = \"9\") "
                 "then $x else ()")
        plan = first_plan(dblp_doc, query)
        # The plan must still be correct: run it both ways and compare.
        from repro.engine.engine import XQEngine

        m1 = XQEngine(dblp_doc.db, "dblp", "m1")
        m4 = XQEngine(dblp_doc.db, "dblp", "m4")
        assert m4.execute_serialized(query) == m1.execute_serialized(query)


class TestJoinReordering:
    def test_calibrated_starts_from_selective_label(self, dblp_doc):
        query = ("for $t1 in //editor/text() return "
                 "for $t2 in //author/text() return "
                 "if ($t1 = $t2) then <m/> else ()")
        plan = first_plan(dblp_doc, query,
                          PlannerConfig(calibration="calibrated"))
        # The leftmost leaf of the chosen plan should touch editors, not
        # authors.
        text = plan.explain()
        first_scan = text[text.find("Scan["):]
        assert "editor" in plan.explain().split("\n")[-1] \
            or "'editor'" in text

    def test_uniform_calibration_changes_plan(self, dblp_doc):
        query = ("for $t1 in //editor/text() return "
                 "for $t2 in //author/text() return "
                 "if ($t1 = $t2) then <m/> else ()")
        calibrated = first_plan(
            dblp_doc, query, PlannerConfig(calibration="calibrated"))
        uniform = first_plan(
            dblp_doc, query, PlannerConfig(calibration="uniform-labels"))
        assert calibrated.explain() != uniform.explain()

    def test_syntactic_order_mirrors_query(self, dblp_doc):
        config = PlannerConfig(join_reorder="syntactic", cost_based=False)
        plan = first_plan(
            dblp_doc,
            "for $a in //article return for $b in $a/author return $b",
            config)
        text = plan.explain()
        assert text.index("[A") < text.index("[A", text.index("[A") + 1)


class TestEstimator:
    @pytest.fixture
    def stats(self):
        return DocumentStatistics(
            total_nodes=10000, element_count=6000, text_count=3900,
            label_counts={"a": 3000, "b": 100, "c": 2900},
            depth_sum=50000, max_depth=12, max_in=20000)

    def test_label_cardinality_calibrated(self, stats):
        estimator = CardinalityEstimator(stats)
        assert estimator.label_cardinality("a") == 3000
        assert estimator.label_cardinality("missing") == 0

    def test_label_cardinality_uniform_ignores_skew(self, stats):
        estimator = CardinalityEstimator(stats, "uniform-labels")
        assert estimator.label_cardinality("a") == \
            estimator.label_cardinality("b") == 2000

    def test_descendant_count_is_average_depth(self, stats):
        estimator = CardinalityEstimator(stats)
        assert estimator.descendant_count() == 5.0

    def test_child_fanout_is_average_children_per_node(self, stats):
        """Regression: ``child_fanout`` once returned ``(n-1)/n + 1.0``
        ≈ 2 — double the true average (n nodes share n-1 child edges),
        inflating every parent-join estimate by 2x."""
        estimator = CardinalityEstimator(stats)
        assert estimator.child_fanout() == pytest.approx(9999 / 10000)
        assert estimator.child_fanout() < 1.0

    def test_child_fanout_pinned_on_known_tree(self, database):
        """The estimate on a concrete stored tree: 9 nodes (root, r,
        3×a, 4 texts) share 8 child edges — fanout 8/9, and a
        parent-join estimate of |XASR| · fanout/|XASR| ≈ 1 child per
        outer row, not 2."""
        from repro.algebra.ra import Attr, Compare, EQ, VarField

        load_document(database, "t",
                      xml="<r><a>x</a><a>y</a><a>z</a>w</r>")
        doc = StoredDocument(database, "t")
        estimator = CardinalityEstimator(doc.statistics)
        assert doc.statistics.total_nodes == 9
        assert estimator.child_fanout() == pytest.approx(8 / 9)
        join = Compare(Attr("C", "parent_in"), EQ, VarField("x", "in"))
        rows = estimator.base_cardinality([join], "C")
        assert rows == pytest.approx(8 / 9)

    def test_pessimistic_text_selectivity(self, stats):
        assert CardinalityEstimator(stats, "pessimistic-text") \
            .text_value_selectivity() == 1.0

    def test_unknown_calibration_rejected(self, stats):
        with pytest.raises(ValueError):
            CardinalityEstimator(stats, "nonsense")

    def test_join_selectivity_cross_product_is_one(self, stats):
        assert CardinalityEstimator(stats).join_selectivity([]) == 1.0


class TestCostModel:
    @pytest.fixture
    def model(self):
        stats = DocumentStatistics(
            total_nodes=80000, element_count=50000, text_count=29000,
            label_counts={"a": 100}, depth_sum=400000, max_depth=10,
            max_in=160000)
        return CostModel(CardinalityEstimator(stats))

    def test_full_scan_costs_all_pages(self, model):
        assert model.full_scan(10).cost >= 80000 / 80

    def test_index_beats_scan_for_rare_label(self, model):
        assert model.label_index_scan(100).cost < model.full_scan(100).cost

    def test_scan_beats_index_for_common_label(self, model):
        assert model.full_scan(40000).cost < \
            model.label_index_scan(40000).cost

    def test_inl_join_scales_with_outer(self, model):
        probe = model.primary_lookup()
        small = model.index_nested_loops_join(Costed(10, 10), probe)
        large = model.index_nested_loops_join(Costed(10, 1000), probe)
        assert large.cost > small.cost

    def test_semi_join_cheaper_than_inl(self, model):
        outer = Costed(10, 1000)
        probe = Costed(5, 3)
        assert model.semi_join(outer, probe).cost < \
            model.index_nested_loops_join(outer, probe).cost

    def test_sort_cost_grows_with_rows(self, model):
        assert model.external_sort(Costed(0, 10**6)).cost > \
            model.external_sort(Costed(0, 10**3)).cost


class TestConfigValidation:
    def test_bad_join_reorder(self):
        from repro.errors import PlanningError

        with pytest.raises(PlanningError):
            PlannerConfig(join_reorder="magic")

    def test_bad_order_strategy(self):
        from repro.errors import PlanningError

        with pytest.raises(PlanningError):
            PlannerConfig(order_strategy="chaos")
