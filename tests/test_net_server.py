"""End-to-end tests for the network front door, over real sockets.

Everything here talks TCP to an in-process
:class:`~repro.net.server.NetworkServer` (plus one subprocess test for
``python -m repro.serve``).  The claims under test:

* the full request vocabulary works — handshake, prepared statements
  with external-variable bindings, streamed multi-page fetches,
  updates, STATS — with results byte-identical to the in-process API;
* failures are *typed* and *scoped*: an ``AdmissionError`` or an
  expired deadline comes back as the same exception class the
  in-process API raises, and the connection (and server) live on;
* protocol violations drop exactly the offending connection, without
  crashing the server or leaking cursors/streams/workers;
* a client that vanishes mid-stream frees its server-side state — the
  leak-proof-disconnect guarantee backpressure makes interesting.
"""

import os
import signal
import socket
import struct
import subprocess
import sys
import time

import pytest

from repro.core import QueryServer, XmlDbms
from repro.errors import (
    AdmissionError,
    CatalogError,
    ProtocolError,
    ResourceLimitExceeded,
    ServerError,
    UpdateError,
    XQSyntaxError,
)
from repro.net import NetClient, NetworkServer
from repro.net.protocol import (
    PROTOCOL_VERSION,
    FrameDecoder,
    MsgKind,
    encode_frame,
)

JOIN_TIMEOUT = 60.0

ITEMS_DOC = ("<r>"
             + "".join(f"<item>v{i}</item>" for i in range(100))
             + "</r>")

BOUND_QUERY = ("declare variable $want external; "
               "for $i in /r/item return "
               "if (some $t in $i/text() satisfies $t = $want) "
               "then $i else ()")


def wait_until(predicate, timeout=JOIN_TIMEOUT, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def server(tmp_path):
    """A served XmlDbms with the items document loaded."""
    with XmlDbms(str(tmp_path / "net.db"), buffer_capacity=256) as dbms:
        dbms.load("doc", xml=ITEMS_DOC)
        with NetworkServer(dbms, workers=2, max_pending=16,
                           page_size=8, log_interval=0.0) as served:
            yield served


@pytest.fixture
def client(server):
    host, port = server.address
    with NetClient(host, port, timeout=JOIN_TIMEOUT) as made:
        yield made


# ---------------------------------------------------------------------------
# the happy path
# ---------------------------------------------------------------------------


class TestProtocolConversation:
    def test_handshake_reports_server_info(self, client):
        assert client.server_info["version"] == PROTOCOL_VERSION
        assert client.server_info["max_frame"] > 0
        assert client.server_info["page_size"] == 8

    def test_query_matches_in_process_results(self, server, client):
        expected = server.dbms.session().query("doc", "/r/item")
        assert client.query("doc", "/r/item") == expected

    def test_multi_page_fetch_streams_every_row(self, client):
        with client.execute("doc", "/r/item", page_size=7) as cursor:
            rows = cursor.fetchall()
        assert len(rows) == 100
        assert rows[0] == "<item>v0</item>"
        assert rows[-1] == "<item>v99</item>"
        assert cursor.total_rows == 100
        # 100 rows at 7/page cannot have arrived in one round trip.
        assert cursor.plan_cache_hit in (True, False)

    def test_prepared_statement_with_bindings(self, client):
        statement = client.prepare("doc", BOUND_QUERY)
        assert statement.externals == ("want",)
        assert statement.query(bindings={"want": "v7"}) \
            == "<item>v7</item>"
        assert statement.query(bindings={"want": "v41"}) \
            == "<item>v41</item>"
        statement.close()

    def test_prepare_rejects_updating_statements(self, client):
        with pytest.raises(UpdateError):
            client.prepare("doc", "insert node <x/> as last into /r")

    def test_update_round_trip_and_visibility(self, client):
        counts = client.update(
            "doc", "insert node <item>fresh</item> as last into /r")
        assert counts["nodes_inserted"] == 2   # element + text node
        rows = client.execute("doc", "/r/item").fetchall()
        assert rows[-1] == "<item>fresh</item>"
        counts = client.update("doc", 'delete nodes //item')
        assert counts["nodes_deleted"] > 0

    def test_stats_payload_shape(self, client):
        client.query("doc", "/r/item")
        stats = client.stats(recent=4)
        server_side, network = stats["server"], stats["network"]
        assert server_side["completed"] >= 1
        for section in ("queue_wait", "execution"):
            histogram = server_side[section]
            assert histogram["count"] >= 1
            assert histogram["p99_ms"] >= histogram["p50_ms"] >= 0.0
        assert network["queries"] >= 1
        assert network["rows_sent"] >= 100
        assert network["bytes_sent"] > 0
        assert network["connections_open"] == 1
        assert network["latency"]["count"] >= 1
        record = network["recent"][-1]
        assert record["status"] == "ok"
        assert record["rows"] == 100

    def test_interleaved_cursors_on_one_connection(self, client):
        first = client.execute("doc", "/r/item", page_size=5)
        second = client.execute("doc", "/r/item", page_size=9)
        page_a = first.fetch_page()
        page_b = second.fetch_page()
        assert len(page_a) == 5 and len(page_b) == 9
        assert len(first.fetchall()) == 95   # the remaining rows
        second.close()
        first.close()


# ---------------------------------------------------------------------------
# typed failures keep the connection (and server) alive
# ---------------------------------------------------------------------------


class TestTypedFailures:
    def test_syntax_error_is_typed_and_connection_survives(self, client):
        with pytest.raises(XQSyntaxError):
            client.query("doc", "for $x in")
        assert client.query("doc", "/r/item").startswith("<item>v0</item>")

    def test_unknown_document_is_a_catalog_error(self, client):
        with pytest.raises(CatalogError):
            client.query("nope", "/r/item")
        assert client.query("doc", "/r/item").startswith("<item>v0</item>")

    def test_admission_error_reaches_client_and_server_stays_up(
            self, tmp_path):
        with XmlDbms(str(tmp_path / "adm.db")) as dbms:
            dbms.load("doc", xml=ITEMS_DOC)
            with NetworkServer(dbms, workers=1, max_pending=1,
                               page_size=1, max_buffered_pages=1,
                               log_interval=0.0) as served:
                host, port = served.address
                with NetClient(host, port) as client:
                    # Cursor 1 occupies the only worker (blocked on
                    # backpressure after ~2 pages of 100); cursor 2
                    # fills the one queue slot; the burst then overruns
                    # admission control.
                    first = client.execute("doc", "/r/item")
                    client.execute("doc", "/r/item")
                    rejected = 0
                    for __ in range(10):
                        try:
                            client.execute("doc", "/r/item")
                        except AdmissionError:
                            rejected += 1
                    assert rejected == 10
                    # Same connection, still healthy: drain cursor 1.
                    assert len(first.fetchall()) == 100

    def test_deadline_expiry_is_typed_resource_limit(self, tmp_path):
        with XmlDbms(str(tmp_path / "dl.db")) as dbms:
            dbms.load("doc", xml=ITEMS_DOC)
            with NetworkServer(dbms, workers=1, max_pending=16,
                               page_size=1, max_buffered_pages=1,
                               log_interval=0.0) as served:
                host, port = served.address
                with NetClient(host, port) as client:
                    blocker = client.execute("doc", "/r/item")
                    doomed = client.execute("doc", "/r/item",
                                            time_limit=0.05)
                    time.sleep(0.2)      # deadline lapses in the queue
                    # Draining the blocker frees the only worker, which
                    # dequeues the doomed query and finds it expired.
                    assert len(blocker.fetchall()) == 100
                    with pytest.raises(ResourceLimitExceeded) as info:
                        doomed.fetchall()
                    assert info.value.kind == "time"
                    # The failed cursor is gone server-side.
                    with pytest.raises(ServerError):
                        client._fetch(doomed.handle)

    def test_unknown_handles_are_server_errors(self, client):
        with pytest.raises(ServerError):
            client._fetch(12345)
        with pytest.raises(ServerError):
            client._close_cursor(9999)
        with pytest.raises(ServerError):
            client._request(MsgKind.CLOSE, {"statement": 777},
                            MsgKind.CLOSE_OK)

    def test_fetch_after_close_is_a_typed_error(self, client):
        cursor = client.execute("doc", "/r/item", page_size=3)
        cursor.fetch_page()
        cursor.close()
        with pytest.raises(ServerError):
            client._fetch(cursor.handle)
        cursor.close()                   # idempotent client-side


# ---------------------------------------------------------------------------
# protocol violations drop the connection without collateral damage
# ---------------------------------------------------------------------------


def _raw_connection(server):
    host, port = server.address
    sock = socket.create_connection((host, port), timeout=JOIN_TIMEOUT)
    return sock


def _read_frames(sock):
    """Read until the peer closes; return the decoded frames."""
    decoder = FrameDecoder()
    frames = []
    while True:
        try:
            data = sock.recv(65536)
        except (ConnectionError, socket.timeout):
            break
        if not data:
            break
        decoder.feed(data)
        frames.extend(decoder.frames())
    return frames


class TestProtocolViolations:
    def test_version_mismatch_answers_error_then_drops(self, server):
        sock = _raw_connection(server)
        try:
            sock.sendall(encode_frame(MsgKind.HELLO, {"version": 99}))
            frames = _read_frames(sock)
        finally:
            sock.close()
        assert frames, "server must answer before dropping"
        kind, payload = frames[0]
        assert kind is MsgKind.ERROR
        assert payload["error"] == "ProtocolError"
        assert "version" in payload["message"]

    def test_garbage_length_prefix_drops_without_crash(self, server):
        sock = _raw_connection(server)
        try:
            sock.sendall(encode_frame(MsgKind.HELLO,
                                      {"version": PROTOCOL_VERSION}))
            sock.sendall(struct.pack("!I", 0xDEADBEEF))
            frames = _read_frames(sock)
        finally:
            sock.close()
        kinds = [kind for kind, __ in frames]
        assert kinds[0] is MsgKind.HELLO_OK
        assert kinds[-1] is MsgKind.ERROR
        # The listener survived: a fresh client still gets answers.
        host, port = server.address
        with NetClient(host, port) as client:
            assert client.query("doc", "/r/item").startswith("<item>v0</item>")
        assert server.metrics.snapshot()["protocol_errors"] >= 1

    def test_violation_mid_session_frees_open_cursors(self, server):
        """A client with a live (backpressured) stream that then breaks
        the protocol loses the connection — and the server closes its
        streams, freeing the producing worker."""
        host, port = server.address
        client = NetClient(host, port, timeout=JOIN_TIMEOUT)
        client.execute("doc", "/r/item", page_size=1)   # live stream
        assert len(server.query_server._streams) == 1
        # Now break framing on the same socket.
        client._sock.sendall(struct.pack("!I", 0))
        assert wait_until(
            lambda: len(server.query_server._streams) == 0), \
            "stream leaked after a protocol violation dropped the peer"
        client.close()
        with NetClient(host, port) as fresh:
            assert fresh.query("doc", "/r/item").startswith("<item>v0</item>")

    def test_bad_execute_payload_is_a_violation(self, server):
        host, port = server.address
        with NetClient(host, port) as client:
            with pytest.raises(ProtocolError):
                client._request(MsgKind.EXECUTE,
                                {"document": "doc", "query": "/r/item",
                                 "bindings": {"x": 42}},
                                MsgKind.EXECUTE_OK)
            # Violations drop the connection.
            with pytest.raises(ProtocolError):
                client.query("doc", "/r/item")

    def test_abrupt_disconnect_mid_stream_frees_the_worker(self, server):
        """The headline leak-proofing test: kill the socket while the
        server is blocked producing pages, then prove the worker pool
        recovered by running more queries than there are workers."""
        host, port = server.address
        for __ in range(3):              # repeat: no slow accumulation
            client = NetClient(host, port, timeout=JOIN_TIMEOUT)
            cursor = client.execute("doc", "/r/item", page_size=1)
            assert cursor.fetch_page() == ["<item>v0</item>"]
            client._sock.close()         # vanish without CLOSE
            assert wait_until(
                lambda: len(server.query_server._streams) == 0), \
                "disconnect leaked a stream"
        with NetClient(host, port) as fresh:
            for __ in range(4):          # > workers: none are stuck
                assert len(fresh.execute("doc", "/r/item").fetchall()) \
                    == 100


# ---------------------------------------------------------------------------
# sharing one QueryServer between front doors
# ---------------------------------------------------------------------------


class TestEmbedding:
    def test_wrapping_an_existing_query_server(self, tmp_path):
        """A NetworkServer handed a QueryServer must serve through it
        and must not close it on stop()."""
        with XmlDbms(str(tmp_path / "own.db")) as dbms:
            dbms.load("doc", xml=ITEMS_DOC)
            with QueryServer(dbms, workers=2) as pool:
                served = NetworkServer(dbms, query_server=pool,
                                       log_interval=0.0)
                host, port = served.start()
                with NetClient(host, port) as client:
                    assert client.query("doc", "/r/item") \
                        .startswith("<item>v0</item>")
                served.stop()
                # The pool is still ours, still working.
                future = pool.submit("doc", "/r/item", serialize=True)
                assert future.result(timeout=JOIN_TIMEOUT)


# ---------------------------------------------------------------------------
# the command-line entry point
# ---------------------------------------------------------------------------


class TestServeSubprocess:
    def test_serve_starts_answers_and_shuts_down_cleanly(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [p for p in (env.get("PYTHONPATH"),) if p]
            + [os.path.join(os.path.dirname(__file__), "..", "src")])
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.serve",
             "--generate", "doc=dblp:12", "--port", "0",
             "--workers", "2", "--log-interval", "0"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)
        try:
            banner = process.stdout.readline().strip()
            assert banner.startswith("LISTENING "), banner
            __, host, port = banner.split()
            with NetClient(host, int(port),
                           timeout=JOIN_TIMEOUT) as client:
                rows = client.execute(
                    "doc",
                    "for $t in //article/title return $t").fetchall()
                assert len(rows) == 12
                assert client.stats()["network"]["queries"] == 1
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=JOIN_TIMEOUT) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
