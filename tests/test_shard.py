"""Sharded serving: routing, fan-out merge, failure semantics.

The fixture is an in-process cluster — N real ``NetworkServer``s on
daemon threads, each over its own ``XmlDbms``, with a ``ShardedServer``
mediating over real sockets — fast enough for property tests.  The
claims under test:

* routed single-document queries and updates behave exactly like a
  direct connection to the owning shard;
* fan-out queries (``"*"`` and partitioned documents) return rows
  byte-identical and in the same document order as one unsharded
  ``QueryServer`` holding all the data — including under an injected
  slow shard (the hypothesis property);
* one dead shard yields typed ``ShardUnavailableError`` for *its*
  documents while the others keep answering; a restarted shard heals
  through the pool's retry;
* the mediator itself serves the wire protocol unchanged behind a
  ``NetworkServer``, and ``python -m repro.shard`` manages a real
  process cluster (the subprocess test).
"""

import subprocess
import sys
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import QueryServer, XmlDbms
from repro.core.server import PageEnvelope
from repro.errors import (
    CatalogError,
    ShardError,
    ShardUnavailableError,
    UpdateError,
)
from repro.net import NetClient, NetworkServer
from repro.net.pool import ConnectionPool
from repro.shard import ShardedServer, split_document
from repro.shard.mediator import statement_text
from repro.xq.parser import parse_program

SHARDS = 3


def items_xml(count, tag="item"):
    return ("<r>"
            + "".join(f"<{tag}>v{i}</{tag}>" for i in range(count))
            + "</r>")


class SlowQueryServer(QueryServer):
    """A QueryServer whose streams pause before every page.

    Injected into one cluster member to model a slow shard: the merge
    must still produce exact document order, just later.
    """

    delay = 0.01

    def submit_stream(self, *args, **kwargs):
        stream = super().submit_stream(*args, **kwargs)
        inner = stream.next_page

        def slow_next_page(timeout=None):
            time.sleep(self.delay)
            return inner(timeout)

        stream.next_page = slow_next_page
        return stream


class Cluster:
    """N in-process shard servers plus a mediator over real sockets."""

    def __init__(self, tmp_path, shards=SHARDS, slow=None):
        self.dbs = []
        self.servers = []
        for index in range(shards):
            dbms = XmlDbms(str(tmp_path / f"shard-{index}.db"),
                           buffer_capacity=256)
            query_server = None
            if index == slow:
                query_server = SlowQueryServer(dbms, workers=2)
            server = NetworkServer(dbms, workers=2, page_size=8,
                                   log_interval=0.0, shard_id=index,
                                   query_server=query_server)
            server.start()
            self.dbs.append(dbms)
            self.servers.append(server)
        self.mediator = ShardedServer(
            [server.address for server in self.servers], timeout=30.0)

    def close(self):
        self.mediator.close()
        for server in self.servers:
            server.stop()
        for dbms in self.dbs:
            dbms.close()


@pytest.fixture
def cluster(tmp_path):
    cluster = Cluster(tmp_path)
    yield cluster
    cluster.close()


# -- partitioning ------------------------------------------------------------


def test_split_document_contiguous_and_exhaustive():
    chunks = split_document(items_xml(10), 3)
    assert len(chunks) == 3
    assert chunks[0] == ("<r><item>v0</item><item>v1</item>"
                         "<item>v2</item><item>v3</item></r>")
    # Recombining the chunks' items reproduces the original order.
    combined = "".join(c.removeprefix("<r>").removesuffix("</r>")
                       for c in chunks)
    assert items_xml(10) == "<r>" + combined + "</r>"


def test_split_document_rejects_empty_chunks():
    with pytest.raises(ShardError):
        split_document(items_xml(2), 3)
    with pytest.raises(ShardError):
        split_document(items_xml(2), 0)


def test_statement_text_redeclares_externals():
    program = parse_program("declare variable $v external; "
                            "for $i in /r/item return $i")
    text = statement_text(program)
    assert "declare variable $v external;" in text
    assert parse_program(text).externals == program.externals


# -- routing -----------------------------------------------------------------


def test_routed_query_and_update(cluster):
    med = cluster.mediator
    med.load("a", xml=items_xml(20))
    assert med.execute("a", "/r/item") == [
        f"<item>v{i}</item>" for i in range(20)]
    result = med.update("a", "insert node <extra/> into /r")
    assert result.nodes_inserted == 1
    assert med.execute("a", "//extra") == ["<extra/>"]


def test_unknown_document_is_catalog_error(cluster):
    with pytest.raises(CatalogError):
        cluster.mediator.submit_stream("nope", "/r")


def test_load_balances_across_shards(cluster):
    med = cluster.mediator
    for index in range(6):
        med.load(f"d{index}", xml=items_xml(1))
    placements = med.documents()
    owners = [shards[0] for shards in placements.values()]
    assert {owners.count(shard) for shard in range(SHARDS)} == {2}


def test_partitioned_load_and_merge(cluster):
    med = cluster.mediator
    med.load("big", xml=items_xml(50), parts=SHARDS)
    assert med.documents()["big"] == tuple(range(SHARDS))
    assert med.execute("big", "/r/item") == [
        f"<item>v{i}</item>" for i in range(50)]


def test_partitioned_update_rejected(cluster):
    med = cluster.mediator
    med.load("big", xml=items_xml(10), parts=2)
    with pytest.raises(UpdateError):
        med.update("big", "insert node <x/> into /r")


def test_fanout_all_documents_in_name_order(cluster):
    med = cluster.mediator
    med.load("b", xml=items_xml(3, tag="bee"))
    med.load("a", xml=items_xml(2, tag="aye"))
    rows = med.execute("*", "/r/*")
    assert rows == (["<aye>v0</aye>", "<aye>v1</aye>"]
                    + [f"<bee>v{i}</bee>" for i in range(3)])


def test_stats_counts_queries_fanouts_and_rows(cluster):
    med = cluster.mediator
    med.load("a", xml=items_xml(5))
    med.execute("a", "/r/item")
    med.execute("*", "/r/item")
    stats = med.stats()
    assert stats.queries == 1
    assert stats.fanouts == 1
    assert stats.loads == 1
    assert stats.rows_streamed == 10
    assert stats.pool_connects >= 1


def test_cluster_stats_aggregates_numeric_counters(cluster):
    med = cluster.mediator
    med.load("a", xml=items_xml(5))
    med.execute("a", "/r/item")
    view = med.cluster_stats()
    assert set(view) == {"mediator", "shards", "aggregate", "pools"}
    assert len(view["shards"]) == SHARDS
    total = sum(shard["server"]["submitted"]
                for shard in view["shards"].values())
    assert view["aggregate"]["server"]["submitted"] == total
    assert view["aggregate"]["server"]["submitted"] >= 1


def test_health_reports_every_shard(cluster):
    report = cluster.mediator.health()
    assert all(entry["ok"] for entry in report.values())
    assert [entry["shard_id"] for entry in report.values()] == [0, 1, 2]


# -- the merge property ------------------------------------------------------


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture,
                                 HealthCheck.data_too_large])
@given(counts=st.lists(st.integers(min_value=0, max_value=12),
                       min_size=1, max_size=4),
       partition_counts=st.integers(min_value=3, max_value=30))
def test_fanout_matches_single_process_reference(
        tmp_path_factory, counts, partition_counts):
    """Fan-out rows are byte-identical, in document order, with a slow
    shard injected — against an unsharded QueryServer reference."""
    tmp_path = tmp_path_factory.mktemp("merge")
    documents = {f"doc{index}": items_xml(count, tag=f"t{index}")
                 for index, count in enumerate(counts)}
    documents["part"] = items_xml(partition_counts, tag="part")

    # Reference: every document in ONE database, one QueryServer.
    reference_rows = []
    with XmlDbms(str(tmp_path / "ref.db"), buffer_capacity=256) as ref:
        for name in sorted(documents):
            ref.load(name, xml=documents[name])
        with QueryServer(ref, workers=1) as server:
            for name in sorted(documents):
                stream = server.submit_stream(name, "/r/*",
                                              serialize=True)
                for page in stream.pages():
                    reference_rows.extend(page)

    cluster = Cluster(tmp_path, slow=1)
    try:
        med = cluster.mediator
        for name in sorted(documents):
            if name == "part":
                med.load(name, xml=documents[name], parts=SHARDS)
            else:
                med.load(name, xml=documents[name])
        assert med.execute("*", "/r/*", time_limit=60.0) == \
            reference_rows
    finally:
        cluster.close()


# -- failure semantics -------------------------------------------------------


def test_dead_shard_is_typed_and_scoped(cluster):
    med = cluster.mediator
    med.load("a", xml=items_xml(3))
    med.load("b", xml=items_xml(3))
    med.load("c", xml=items_xml(3))
    placements = med.documents()
    victim_doc = next(name for name, shards in placements.items()
                      if shards == (1,))
    survivor_doc = next(name for name, shards in placements.items()
                        if shards != (1,))
    cluster.servers[1].stop()
    with pytest.raises(ShardUnavailableError) as info:
        med.execute(victim_doc, "/r/item")
    assert info.value.shard == 1
    # The others keep answering, queries and fan-outs alike fail only
    # where the dead shard is actually needed.
    assert med.execute(survivor_doc, "/r/item") == [
        f"<item>v{i}</item>" for i in range(3)]
    with pytest.raises(ShardUnavailableError):
        med.execute("*", "/r/item")


def test_dead_shard_update_is_typed(cluster):
    med = cluster.mediator
    med.load("a", xml=items_xml(3))
    shard = med.documents()["a"][0]
    cluster.servers[shard].stop()
    with pytest.raises(ShardUnavailableError) as info:
        med.update("a", "insert node <x/> into /r")
    assert info.value.shard == shard
    assert info.value.document == "a"


def test_pool_retry_heals_a_restarted_shard(cluster, tmp_path):
    med = cluster.mediator
    med.load("a", xml=items_xml(4))
    shard = med.documents()["a"][0]
    assert med.execute("a", "/r/item")  # pool now holds a connection
    # Restart the member on the SAME port over the same database.
    host, port = cluster.servers[shard].address
    cluster.servers[shard].stop()
    dbms = cluster.dbs[shard]
    replacement = NetworkServer(dbms, host=host, port=port, workers=2,
                                page_size=8, log_interval=0.0,
                                shard_id=shard)
    replacement.start()
    cluster.servers[shard] = replacement
    # The pooled connection is stale; the retry must absorb that.
    assert med.execute("a", "/r/item") == [
        f"<item>v{i}</item>" for i in range(4)]
    assert med.stats().pool_retries >= 1


def test_connection_pool_reuses_and_counts(cluster):
    host, port = cluster.servers[0].address
    with ConnectionPool(host, port, capacity=2) as pool:
        first = pool.run(lambda client: client.stats())
        second = pool.run(lambda client: client.stats())
        assert first and second
        stats = pool.stats()
        assert stats["connects"] == 1
        assert stats["reuses"] == 1
    with pytest.raises(ShardUnavailableError):
        with ConnectionPool("127.0.0.1", 1, capacity=1,
                            timeout=2.0) as dead:
            dead.run(lambda client: client.stats())


def test_closed_stream_raises_and_frees(cluster):
    med = cluster.mediator
    med.load("a", xml=items_xml(40))
    stream = med.submit_stream("a", "/r/item", page_size=4)
    assert stream.next_page()
    stream.close()
    from repro.errors import CursorClosedError
    with pytest.raises(CursorClosedError):
        stream.next_page()


# -- the wire front door over a mediator -------------------------------------


def test_mediator_served_over_network_server(cluster):
    med = cluster.mediator
    med.load("a", xml=items_xml(6))
    med.load("big", xml=items_xml(12), parts=SHARDS)
    front = NetworkServer(None, query_server=med, log_interval=0.0)
    host, port = front.start()
    try:
        with NetClient(host, port) as client:
            assert client.query("a", "/r/item") == "".join(
                f"<item>v{i}</item>" for i in range(6))
            assert client.query("big", "/r/item") == "".join(
                f"<item>v{i}</item>" for i in range(12))
            statement = client.prepare(
                "a", "declare variable $want external; "
                     "for $i in /r/item return "
                     "if (some $t in $i/text() satisfies $t = $want) "
                     "then $i else ()")
            assert statement.query(bindings={"want": "v3"}) == \
                "<item>v3</item>"
            client.load("fresh", "<r><item>new</item></r>")
            assert client.query("fresh", "/r/item") == \
                "<item>new</item>"
            counts = client.update("a",
                                   "insert node <x/> into /r")
            assert counts["nodes_inserted"] == 1
            stats = client.stats()
            assert stats["server"]["shards"] == SHARDS
    finally:
        front.stop()


def test_page_envelope_round_trip():
    envelope = PageEnvelope(document="d", base=16,
                            rows=["<a/>", "<b/>"], eof=False)
    assert PageEnvelope.from_payload(envelope.as_payload()) == envelope
    final = PageEnvelope(document="d", base=18, rows=[], eof=True,
                         total_rows=18, plan_cache_hit=True)
    assert PageEnvelope.from_payload(final.as_payload()) == final


# -- the real process cluster ------------------------------------------------


def test_shard_main_subprocess_lifecycle(tmp_path):
    """``python -m repro.shard`` spawns members, serves, dies cleanly."""
    import os
    import signal as signals

    process = subprocess.Popen(
        [sys.executable, "-m", "repro.shard",
         "--shards", "2", "--data-dir", str(tmp_path / "cluster"),
         "--generate", "dblp=dblp:40", "--partition", "dblp",
         "--log-interval", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env={**os.environ,
             "PYTHONPATH": str(
                 __import__("pathlib").Path(__file__).parent.parent
                 / "src")})
    try:
        banner = process.stdout.readline().split()
        assert banner[0] == "LISTENING", process.stderr.read()[-2000:]
        host, port = banner[1], int(banner[2])
        with NetClient(host, port) as client:
            rows = client.execute("dblp", "//author").fetchall()
            assert rows, "partitioned document served no rows"
            assert client.stats()["server"]["shards"] == 2
    finally:
        process.send_signal(signals.SIGTERM)
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()
    assert process.returncode == 0


def test_execute_closes_its_stream_on_success_and_error():
    # execute() owns the stream it opens: it must close it whether the
    # page iteration completes or raises, or the shard-side cursor and
    # the mediator's stream registry leak.
    server = ShardedServer([("127.0.0.1", 1)])

    class FakeStream:
        def __init__(self, fail):
            self.fail = fail
            self.closed = False

        def pages(self):
            yield ["<row/>"]
            if self.fail:
                raise RuntimeError("mid-stream failure")

        def close(self, reason=None):
            self.closed = True

    try:
        good = FakeStream(fail=False)
        server.submit_stream = lambda *args, **kwargs: good
        assert server.execute("doc", "$doc") == ["<row/>"]
        assert good.closed

        bad = FakeStream(fail=True)
        server.submit_stream = lambda *args, **kwargs: bad
        with pytest.raises(RuntimeError):
            server.execute("doc", "$doc")
        assert bad.closed
    finally:
        del server.submit_stream
        server.close()
