"""TPM algebra tests: translation rules, merging (Figure 4), strict
merging, redundant-relation elimination, residual promotion, ordering."""

import pytest

from repro.algebra.merge import (
    eliminate_in_psx,
    eliminate_redundant_relations,
    merge_relfors,
    promote_residuals,
)
from repro.algebra.ra import Attr, Compare, Const, EQ, LT, PSX, VarField
from repro.algebra.order import (
    hierarchical_key,
    is_hierarchically_sorted,
    is_weakly_sorted,
)
from repro.algebra.tpm import (
    RelFor,
    TpmConstr,
    TpmEmpty,
    TpmSequence,
    TpmVarOut,
    count_relfors,
)
from repro.algebra.translate import translate
from repro.errors import AlgebraError
from repro.xasr.schema import ELEMENT, XasrNode
from repro.xq.parser import parse_query


def tr(text, **kwargs):
    return translate(parse_query(text), **kwargs)


class TestTranslationRules:
    def test_child_rule_shape(self):
        """for $y in $x/a ⊢ relfor ($y) in PSX(parent_in=$x ∧ type=elem ∧
        value=a)."""
        tpm = tr("for $y in $x/a return $y")
        assert isinstance(tpm, RelFor)
        assert tpm.vartuple == ("y",)
        psx = tpm.source
        alias = psx.alias_of("y")
        rendered = {str(c) for c in psx.conditions}
        assert f"{alias}.parent_in = $x.in" in rendered
        assert f"{alias}.type = 1" in rendered
        assert f"{alias}.value = 'a'" in rendered
        assert isinstance(tpm.body, TpmVarOut)

    def test_descendant_rule_with_out_values(self):
        tpm = tr("for $y in $x//a return $y")
        psx = tpm.source
        alias = psx.alias_of("y")
        rendered = {str(c) for c in psx.conditions}
        assert f"$x.in < {alias}.in" in rendered
        assert f"{alias}.out < $x.out" in rendered
        assert len(psx.relations) == 1

    def test_descendant_rule_paper_original_form(self):
        """carry_out_values=False emits the extra XASR[R1] self-join of
        the paper's verbatim rule."""
        tpm = tr("for $y in $x//a return $y", carry_out_values=False)
        psx = tpm.source
        assert len(psx.relations) == 2
        rendered = {str(c) for c in psx.conditions}
        anchor = psx.relations[0]
        assert f"{anchor}.in = $x.in" in rendered

    def test_text_test_rule(self):
        tpm = tr("for $t in $x/text() return $t")
        rendered = {str(c) for c in tpm.source.conditions}
        alias = tpm.source.alias_of("t")
        assert f"{alias}.type = 2" in rendered

    def test_wildcard_rule_has_no_value_condition(self):
        tpm = tr("for $y in $x/* return $y")
        assert not any("value" in str(c) for c in tpm.source.conditions)

    def test_if_becomes_nullary_relfor(self):
        """if φ then α ⊢ relfor () in ALG(φ) return α."""
        tpm = tr("if (some $t in $x/text() satisfies true()) then <y/>",
                 )
        assert isinstance(tpm, RelFor)
        assert tpm.vartuple == ()
        assert len(tpm.source.relations) == 1
        assert tpm.source.bindings == ()

    def test_true_condition_is_empty_psx(self):
        tpm = tr("if (true()) then <y/>")
        assert tpm.source.relations == ()
        assert tpm.source.conditions == ()

    def test_some_equality_becomes_value_condition(self):
        tpm = tr('if (some $t in $x/text() satisfies $t = "Ana") '
                 "then <y/>")
        assert any(".value = 'Ana'" in str(c)
                   for c in tpm.source.conditions)
        assert tpm.source.residuals == ()

    def test_some_equality_on_elements_stays_residual(self):
        # $t binds elements; '=' on it is a runtime type error, so it
        # must NOT silently become a value condition.
        tpm = tr('if (some $t in $x/a satisfies $t = "v") then <y/>')
        assert len(tpm.source.residuals) == 1

    def test_or_condition_becomes_residual(self):
        tpm = tr("if (true() or true()) then <y/>")
        assert len(tpm.source.residuals) == 1

    def test_and_splits_into_conjuncts(self):
        tpm = tr("if (some $t in $x/text() satisfies true() and "
                 "some $u in $x/text() satisfies true()) then <y/>")
        assert len(tpm.source.relations) == 2

    def test_sequence_and_constructor(self):
        tpm = tr("<a>hi</a>, ()")
        assert isinstance(tpm, TpmSequence)
        assert isinstance(tpm.parts[0], TpmConstr)
        assert isinstance(tpm.parts[1], TpmEmpty)

    def test_bare_step_translates_to_relfor(self):
        tpm = tr("//name")
        assert isinstance(tpm, RelFor)
        assert isinstance(tpm.body, TpmVarOut)

    def test_count_relfors(self):
        tpm = tr("for $a in /x return for $b in $a/y return $b")
        assert count_relfors(tpm) == 2


class TestMerging:
    def test_figure4_merge(self):
        """Example 2's nested fors merge into one relfor (Figure 4)."""
        tpm = tr("for $j in /journal return "
                 "for $n in $j//name return $n")
        merged = merge_relfors(tpm)
        assert isinstance(merged, RelFor)
        assert merged.vartuple == ("j", "n")
        assert count_relfors(merged) == 1
        # The inner PSX's reference to $j was substituted by J's attrs.
        j_alias = merged.source.alias_of("j")
        rendered = {str(c) for c in merged.source.conditions}
        assert any(f"{j_alias}.in <" in r for r in rendered)

    def test_constructor_blocks_merge(self):
        """The strict merging rule: a constructor between the loops."""
        tpm = tr("for $j in /journal return "
                 "<j>{ for $n in $j//name return $n }</j>")
        merged = merge_relfors(tpm)
        assert count_relfors(merged) == 2

    def test_if_relfor_merges_through(self):
        """Figure 5's three relfors merge into one."""
        tpm = tr("for $j in /journal return "
                 "if (some $t in $j//text() satisfies true()) "
                 "then for $n in $j//name return $n else ()")
        merged = merge_relfors(tpm)
        assert count_relfors(merged) == 1
        assert merged.vartuple == ("j", "n")
        assert len(merged.source.relations) == 3

    def test_merge_rebinds_residuals(self):
        tpm = tr("for $t in /a/text() return "
                 "if ($t = $u or true()) then $t else ()")
        merged = merge_relfors(tpm)
        assert count_relfors(merged) == 1
        (residual,) = merged.source.residuals
        bound = dict(residual.bound)
        assert bound["t"][0] == "alias"
        assert bound["u"] == ("var", "u")

    def test_three_level_merge(self):
        tpm = tr("for $a in /x return for $b in $a/y return "
                 "for $c in $b/z return $c")
        merged = merge_relfors(tpm)
        assert count_relfors(merged) == 1
        assert merged.vartuple == ("a", "b", "c")


class TestRedundantElimination:
    def test_example4_note_drop_same_relation(self):
        """'Because N1.in = $j = J.in ... we can safely drop N1.'"""
        tpm = tr("for $j in /journal return for $n in $j//name return $n",
                 carry_out_values=False)
        merged = merge_relfors(tpm)
        before = len(merged.source.relations)
        eliminated = eliminate_redundant_relations(merged)
        after = len(eliminated.source.relations)
        assert before == 3          # J, anchor N1, N2
        assert after == 2           # anchor pinned to J.in is dropped

    def test_elimination_preserves_bindings(self):
        tpm = tr("for $j in /journal return for $n in $j//name return $n",
                 carry_out_values=False)
        eliminated = eliminate_redundant_relations(merge_relfors(tpm))
        assert eliminated.vartuple == ("j", "n")
        assert len(eliminated.source.bindings) == 2

    def test_manual_pin_to_relation(self):
        psx = PSX(
            bindings=(("x", "A"),),
            conditions=(
                Compare(Attr("A", "in"), EQ, Attr("B", "in")),
                Compare(Attr("B", "value"), EQ, Const("a")),
            ),
            relations=("A", "B"))
        out = eliminate_in_psx(psx)
        assert out.relations == ("A",)
        assert any("A.value = 'a'" == str(c) for c in out.conditions)

    def test_var_pin_requires_in_out_columns_only(self):
        # B.value is used, and $x carries only in/out — cannot eliminate.
        psx = PSX(
            bindings=(("x", "A"),),
            conditions=(
                Compare(Attr("A", "in"), LT, Attr("B", "in")),
                Compare(Attr("B", "in"), EQ, VarField("v", "in")),
                Compare(Attr("B", "value"), EQ, Const("a")),
            ),
            relations=("A", "B"))
        assert len(eliminate_in_psx(psx).relations) == 2


class TestResidualPromotion:
    def test_for_bound_text_equality_promotes(self):
        tpm = tr("for $s in /a/text() return for $t in /b/text() return "
                 "if ($s = $t) then <m/> else ()")
        merged = promote_residuals(merge_relfors(tpm))
        assert merged.source.residuals == ()
        assert any(".value = " in str(c) and "'" not in str(c)
                   for c in merged.source.conditions)

    def test_element_bound_equality_not_promoted(self):
        tpm = tr("for $s in /a/x return for $t in /b/y return "
                 "if ($s = $t) then <m/> else ()")
        merged = promote_residuals(merge_relfors(tpm))
        assert len(merged.source.residuals) == 1

    def test_const_equality_promotes(self):
        tpm = tr('for $s in /a/text() return '
                 'if ($s = "v") then $s else ()')
        merged = promote_residuals(merge_relfors(tpm))
        assert merged.source.residuals == ()


class TestPsxValidation:
    def test_binding_alias_must_exist(self):
        with pytest.raises(AlgebraError):
            PSX(bindings=(("x", "A"),), conditions=(), relations=("B",))

    def test_condition_alias_must_exist(self):
        with pytest.raises(AlgebraError):
            PSX(bindings=(), conditions=(
                Compare(Attr("A", "in"), EQ, Const(1)),),
                relations=("B",))

    def test_describe_uses_paper_notation(self):
        psx = PSX(bindings=(("x", "A"),),
                  conditions=(Compare(Attr("A", "value"), EQ,
                                      Const("a")),),
                  relations=("A",))
        text = psx.describe()
        assert text.startswith("PSX((A.in)")
        assert "XASR[A]" in text


class TestOrder:
    def node(self, in_):
        return XasrNode(in_, in_ + 1, 0, ELEMENT, "x")

    def test_hierarchical_key(self):
        row = (self.node(3), self.node(7))
        assert hierarchical_key(row) == (3, 7)

    def test_sorted_detection(self):
        rows = [(self.node(2), self.node(4)), (self.node(2), self.node(8))]
        assert is_hierarchically_sorted(rows)

    def test_duplicates_fail_strict(self):
        rows = [(self.node(2),), (self.node(2),)]
        assert not is_hierarchically_sorted(rows)
        assert is_weakly_sorted(rows)

    def test_out_of_order_detected(self):
        rows = [(self.node(2), self.node(8)), (self.node(2), self.node(4))]
        assert not is_weakly_sorted(rows)
