"""Buffer pool tests: pinning, LRU eviction, write-back, accounting."""

import pytest

from repro.errors import BufferPoolError
from repro.storage.buffer import BufferPool
from repro.storage.pager import Pager


@pytest.fixture
def pool(tmp_path):
    pager = Pager(str(tmp_path / "buf.db"), create=True, page_size=256)
    pool = BufferPool(pager, capacity=3)
    yield pool
    pager.close()


def fill(pool, count):
    """Allocate ``count`` pages, each tagged with its index."""
    ids = []
    for index in range(count):
        page_id, page = pool.new_page()
        page[0] = index + 1
        pool.unpin(page_id, dirty=True)
        ids.append(page_id)
    return ids


class TestBasics:
    def test_new_page_is_pinned_and_dirty(self, pool):
        page_id, __ = pool.new_page()
        assert pool.pin_count(page_id) == 1

    def test_get_page_returns_written_data(self, pool):
        (page_id,) = fill(pool, 1)
        with pool.pinned(page_id) as page:
            assert page[0] == 1

    def test_unpin_without_pin_rejected(self, pool):
        (page_id,) = fill(pool, 1)
        pool.get_page(page_id)
        pool.unpin(page_id)
        with pytest.raises(BufferPoolError):
            pool.unpin(page_id)

    def test_capacity_must_be_positive(self, pool):
        with pytest.raises(BufferPoolError):
            BufferPool(pool.pager, capacity=0)


class TestEviction:
    def test_lru_victim_is_least_recently_used(self, pool):
        first, second, third = fill(pool, 3)
        pool.get_page(first, pin=False)      # first becomes MRU
        fill(pool, 1)                        # force one eviction
        resident = pool.resident_pages()
        assert second not in resident
        assert first in resident

    def test_eviction_writes_back_dirty_pages(self, pool):
        ids = fill(pool, 6)                  # overflows capacity 3
        # All data must still be readable (faulted back from disk).
        for index, page_id in enumerate(ids):
            with pool.pinned(page_id) as page:
                assert page[0] == index + 1

    def test_pinned_pages_are_not_evicted(self, pool):
        first, __, __ = fill(pool, 3)
        pool.get_page(first)                 # keep pinned
        fill(pool, 2)
        assert first in pool.resident_pages()
        pool.unpin(first)

    def test_all_pinned_raises(self, pool):
        for __ in range(3):
            pool.new_page()                  # never unpinned
        with pytest.raises(BufferPoolError):
            pool.new_page()

    def test_eviction_callback_fires(self, pool):
        evicted = []
        pool.on_evict(evicted.append)
        ids = fill(pool, 5)
        assert evicted
        assert set(evicted) <= set(ids)


class TestFlush:
    def test_flush_persists_without_evicting(self, pool):
        (page_id,) = fill(pool, 1)
        pool.flush()
        assert page_id in pool.resident_pages()
        raw = pool.pager.read_page(page_id)
        assert raw[0] == 1

    def test_flush_and_clear_empties_pool(self, pool):
        fill(pool, 2)
        pool.flush_and_clear()
        assert pool.resident_pages() == []

    def test_free_page_returns_to_pager(self, pool):
        (page_id,) = fill(pool, 1)
        pool.free_page(page_id)
        assert pool.pager.free_head == page_id

    def test_free_pinned_page_rejected(self, pool):
        page_id, __ = pool.new_page()
        with pytest.raises(BufferPoolError):
            pool.free_page(page_id)


class TestStats:
    def test_hit_and_miss_accounting(self, pool):
        (page_id,) = fill(pool, 1)
        pool.flush_and_clear()
        pool.get_page(page_id, pin=False)    # miss
        pool.get_page(page_id, pin=False)    # hit
        assert pool.stats.misses >= 1
        assert pool.stats.hits >= 1

    def test_hit_rate(self, pool):
        (page_id,) = fill(pool, 1)
        for __ in range(9):
            pool.get_page(page_id, pin=False)
        assert pool.stats.hit_rate > 0.8

    def test_memory_bytes_bounded_by_capacity(self, pool):
        fill(pool, 10)
        assert pool.memory_bytes <= 3 * pool.pager.page_size


class TestStatsLocking:
    def test_commit_cycle_mutates_stats_only_under_the_pool_lock(
            self, pool):
        # Swap the stats object for a probe that asserts the pool
        # mutex is held on every counter mutation, then drive a full
        # write-transaction cycle including the durable write-back
        # (whose counter used to be bumped outside the lock).
        from repro.storage.buffer import BufferStats

        armed = []

        class AssertingStats(BufferStats):
            def __setattr__(self, name, value):
                if armed:
                    assert pool._lock._is_owned(), (
                        f"stats.{name} mutated without the pool lock")
                object.__setattr__(self, name, value)

        pool.stats = AssertingStats()
        armed.append(True)
        pool.begin_tracking()
        page_id, page = pool.new_page()
        page[0] = 7
        pool.unpin(page_id, dirty=True)
        images = pool.transaction_pages()
        lsn, mods = pool.publish_commit()
        pool.complete_commit(lsn, images, mods)
        assert pool.stats.dirty_writebacks == len(mods) >= 1
