"""Setuptools shim.

The offline environment has setuptools but no ``wheel`` package, so PEP 660
editable installs fail; this shim keeps ``pip install -e .`` working via the
legacy ``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""
from setuptools import setup

setup()
