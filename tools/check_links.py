#!/usr/bin/env python3
"""Check relative links and anchors in the repo's markdown tree.

A stdlib-only checker for the docs CI job: every ``[text](target)``
link in README.md and docs/*.md is resolved.

* ``http(s)://`` and ``mailto:`` targets are skipped (no network in CI
  beyond what the job already does; external rot is not a merge gate).
* Relative file targets must exist on disk, resolved against the file
  containing the link.
* ``#fragment`` targets (with or without a file part) must match a
  heading in the target file, using GitHub's slugification (lowercase,
  spaces to hyphens, punctuation stripped).
* Bare ``#fragment`` targets resolve against the containing file.

Exit status is the number of broken links (0 = clean), and each broken
link is reported as ``file:line: message`` so editors can jump to it.

Run with::

    python tools/check_links.py            # README.md + docs/**/*.md
    python tools/check_links.py FILE...    # an explicit file list
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Inline links: [text](target).  Images use the same tail, so the
#: optional leading ! is consumed but ignored.  Code spans are removed
#: before matching, so `[x](y)` inside backticks is not a link.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_CODE_SPAN = re.compile(r"`[^`]*`")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_FENCE = re.compile(r"^(```|~~~)")
_EXTERNAL = ("http://", "https://", "mailto:")


def slugify(heading: str) -> str:
    """GitHub's anchor slug for a heading line."""
    text = _CODE_SPAN.sub(lambda m: m.group(0)[1:-1], heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    """Every heading anchor in a markdown file (fences excluded)."""
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if not match:
            continue
        slug = slugify(match.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def iter_links(path: Path):
    """Yield ``(line_number, target)`` for every inline link."""
    in_fence = False
    for number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        stripped = _CODE_SPAN.sub("", line)
        for match in _LINK.finditer(stripped):
            yield number, match.group(1)


def _display(path: Path) -> str:
    """``path`` relative to the repo root when inside it, else as-is."""
    try:
        return str(path.relative_to(ROOT))
    except ValueError:
        return str(path)


def check_file(path: Path, anchor_cache: dict[Path, set[str]]) -> list[str]:
    """Every broken-link message for one markdown file."""
    problems = []
    for number, target in iter_links(path):
        if target.startswith(_EXTERNAL):
            continue
        file_part, _, fragment = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                problems.append(f"{_display(path)}:{number}: "
                                f"missing file {target!r}")
                continue
        else:
            resolved = path.resolve()
        if fragment:
            if resolved.suffix.lower() not in (".md", ".markdown"):
                continue                 # anchors into code files: skip
            if resolved not in anchor_cache:
                anchor_cache[resolved] = anchors_of(resolved)
            if fragment.lower() not in anchor_cache[resolved]:
                problems.append(f"{_display(path)}:{number}: "
                                f"no heading for anchor {target!r}")
    return problems


def main(argv: list[str]) -> int:
    """Check the given files (default: README.md and docs/**/*.md)."""
    if argv:
        files = [Path(arg).resolve() for arg in argv]
    else:
        files = [ROOT / "README.md"]
        files += sorted((ROOT / "docs").glob("**/*.md"))
    missing = [f for f in files if not f.exists()]
    for path in missing:
        print(f"error: no such file: {path}", file=sys.stderr)
    if missing:
        return len(missing)
    cache: dict[Path, set[str]] = {}
    problems = []
    for path in files:
        problems += check_file(path, cache)
    for problem in problems:
        print(problem)
    checked = len(files)
    if problems:
        print(f"{len(problems)} broken link(s) across {checked} file(s)",
              file=sys.stderr)
    else:
        print(f"OK: {checked} file(s), all relative links resolve")
    return len(problems)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
