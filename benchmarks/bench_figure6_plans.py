"""Example 6 / Figure 6: QP0 vs QP1 vs QP2.

The paper walks one query ("the list of authors of articles that have
information on proceedings volume") through three plans:

* **QP0** — mirror the query bottom-up: A ⋈ (B × V) with the whole join
  condition on top (no selection pushing, no join creation);
* **QP1** — split and push the conditions, reorder to ((A ⋈ B) ⋈ V),
  order-preserving throughout;
* **QP2** — push projections to simulate a semijoin, reorder so the
  selective volume join comes first, implement both joins as INL joins.

QP0/QP1/QP2 are realized here as planner configurations of decreasing
restriction; the benchmark reports wall-clock and logical page I/O for
each, and asserts QP2 < QP1 < QP0 on I/O, which is the paper's ranking.
"""

import pytest

from repro.optimizer.planner import PlannerConfig
from repro.engine.profiles import EngineProfile

#: The Example 6 query.
QUERY = ("for $x in //article return "
         "if (some $v in $x/volume satisfies true()) "
         "then for $y in $x//author return $y else ()")

PLANS = {
    # QP0: products in syntactic order, conditions on top, sort at end.
    "QP0": EngineProfile(
        name="qp0", description="naive: mirror the query",
        planner=PlannerConfig(
            push_selections=False, create_joins=False,
            use_label_index=False, use_parent_index=False,
            use_primary_range=False, use_inl_join=False,
            use_semijoin=False, join_reorder="syntactic",
            order_strategy="sort", cost_based=False)),
    # QP1: selection pushing + join creation, still syntactic order.
    "QP1": EngineProfile(
        name="qp1", description="selection pushing, order-preserving",
        planner=PlannerConfig(
            use_label_index=False, use_parent_index=True,
            use_primary_range=True, use_inl_join=True,
            use_semijoin=False, join_reorder="syntactic",
            order_strategy="preserve", cost_based=False)),
    # QP2: the full milestone-4 plan (semijoin + INL + reordering).
    "QP2": EngineProfile(
        name="qp2", description="semijoin + INL + cost-based order",
        planner=PlannerConfig()),
}


@pytest.fixture(scope="module")
def reference(bench_dbms):
    return bench_dbms.query("dblp", QUERY, profile="m1")


@pytest.mark.parametrize("plan_name", ["QP0", "QP1", "QP2"])
def test_benchmark_plan(benchmark, bench_dbms, reference, plan_name):
    profile = PLANS[plan_name]
    engine = bench_dbms.engine("dblp", profile)
    result = benchmark(engine.execute_serialized, QUERY)
    assert result == reference


def test_plan_ranking_by_page_io(bench_dbms, reference):
    """QP2 < QP1 < QP0, as in the paper's discussion."""
    io = {}
    for plan_name, profile in PLANS.items():
        bench_dbms.reset_buffer_stats()
        result = bench_dbms.query("dblp", QUERY, profile=profile)
        assert result == reference
        io[plan_name] = bench_dbms.buffer_stats.accesses
    print("\npage accesses:", io)
    assert io["QP2"] < io["QP1"] < io["QP0"]


def test_qp2_plan_contains_the_figure6_operators(bench_dbms):
    """The chosen plan realizes Figure 6: the volume existence check
    runs before the author join (semijoin or volume-driven order)."""
    text = bench_dbms.explain("dblp", QUERY, profile=PLANS["QP2"])
    assert "SemiJoin" in text or \
        text.index("'volume'") < text.index("'author'")
