"""Sharded serving vs. one process: breaking the GIL ceiling.

One ``repro.serve`` process tops out at roughly one core of query work
no matter how many worker threads it runs — that is the ceiling
``bench_concurrency`` measures from inside a single process.  This
benchmark runs the *same* closed-loop workload against a real
:class:`~repro.shard.process.ShardCluster` twice — 4 member processes,
then 1 — with documents spread across the members and every client
routing through its own :class:`~repro.shard.mediator.ShardedServer`
(the mediator is a client-side library here: each client process
routes directly to the owning shard, so nothing central caps the
fan-out).

The regression-gated metric:

* ``shard.scaling_4`` — aggregate throughput with 4 shard processes
  over throughput with 1 shard process, same documents, same total
  work.  Four GILs over four documents must beat one GIL by at least
  2x; the committed baseline carries the floor.

A second, ungated test kills one member mid-run and checks the failure
contract: queries for the dead shard's documents fail with a typed
``ShardUnavailableError`` while the surviving shard keeps answering.

Needs >= 4 usable cores (the CI runners have them); below that the
scaling claim is physically meaningless and the module skips.
Results land in ``BENCH_shard.json``.
"""

import multiprocessing
import os
import statistics
import tempfile
import time

import pytest

from repro.errors import ShardUnavailableError
from repro.shard import ShardCluster, ShardedServer
from repro.workloads.dblp import DblpConfig, generate_dblp
from repro.workloads.queries import EFFICIENCY_QUERIES

#: The contested shard count (and the metric's name).
SHARDS = 4
#: Client *processes* driving the cluster closed-loop.
CLIENTS = 8
#: Workload suites in total, split evenly across clients; one suite is
#: every query against every document.
TOTAL_SUITES = 16
#: One document per shard slot; the 1-shard run holds all four.
DOCUMENTS = [f"dblp{index}" for index in range(SHARDS)]
PAGE_SIZE = 256
#: In-bench floor (lenient; ``benchmarks/baseline.json`` carries the
#: real >= 2.0 gate).
MIN_SCALING = 1.5

ARTICLES = int(os.environ.get("REPRO_BENCH_ARTICLES", "500"))
QUERIES = [test.xq for test in EFFICIENCY_QUERIES]
JOIN_TIMEOUT = 300.0

usable_cores = len(os.sched_getaffinity(0))
needs_cores = pytest.mark.skipif(
    usable_cores < SHARDS
    and not os.environ.get("REPRO_BENCH_FORCE_SHARD"),
    reason=f"shard scaling needs >= {SHARDS} usable cores, have "
           f"{usable_cores} (set REPRO_BENCH_FORCE_SHARD=1 to force)")


def _client_process(endpoints, placements, suites, barrier, results):
    """One closed-loop client with its own mediator-as-library."""
    latencies = []
    with ShardedServer(endpoints, timeout=JOIN_TIMEOUT) as mediator:
        for name, shards in placements.items():
            mediator.attach(name, shards)
        for document in DOCUMENTS:       # warm this client's pools
            mediator.execute(document, QUERIES[0])
        barrier.wait(timeout=JOIN_TIMEOUT)
        for __ in range(suites):
            for document in DOCUMENTS:
                for query in QUERIES:
                    started = time.perf_counter()
                    mediator.execute(document, query)
                    latencies.append(time.perf_counter() - started)
    results.put(latencies)


def _run_cluster(shard_count, dblp_xml):
    """Spawn a cluster, place the documents, drive it; returns summary."""
    data_dir = tempfile.mkdtemp(prefix=f"repro-bench-shard{shard_count}-")
    with ShardCluster.spawn(shard_count, data_dir, workers=4,
                            max_pending=256,
                            time_limit=None) as cluster:
        with ShardedServer(cluster.endpoints,
                           timeout=JOIN_TIMEOUT) as loader:
            for document in DOCUMENTS:
                loader.load(document, xml=dblp_xml)
            placements = loader.documents()

        suites_per_client = TOTAL_SUITES // CLIENTS
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(CLIENTS + 1)
        results = context.Queue()
        clients = [context.Process(
            target=_client_process,
            args=(cluster.endpoints, placements, suites_per_client,
                  barrier, results))
            for __ in range(CLIENTS)]
        for client in clients:
            client.start()
        barrier.wait(timeout=JOIN_TIMEOUT)
        started = time.perf_counter()
        latencies = []
        for __ in clients:
            latencies.extend(results.get(timeout=JOIN_TIMEOUT))
        wall = time.perf_counter() - started
        for client in clients:
            client.join(timeout=JOIN_TIMEOUT)
            assert client.exitcode == 0, (
                f"client process failed with exit code "
                f"{client.exitcode}")
    executed = len(latencies)
    assert executed == (CLIENTS * suites_per_client * len(DOCUMENTS)
                        * len(QUERIES))
    ordered = sorted(latencies)
    return {
        "shards": shard_count,
        "queries": executed,
        "wall_seconds": round(wall, 4),
        "qps": executed / wall,
        "p50_ms": round(statistics.median(ordered) * 1e3, 3),
        "p99_ms": round(ordered[min(executed - 1,
                                    int(executed * 0.99))] * 1e3, 3),
    }


@needs_cores
def test_shard_scaling(bench_record):
    dblp_xml = generate_dblp(DblpConfig(
        articles=ARTICLES,
        inproceedings=max(1, ARTICLES * 3 // 10), name_pool=40))
    sharded = _run_cluster(SHARDS, dblp_xml)
    single = _run_cluster(1, dblp_xml)
    scaling = sharded["qps"] / single["qps"]

    print(f"\n1 shard : {single['qps']:8.1f} q/s   "
          f"p50 {single['p50_ms']:7.2f} ms   "
          f"p99 {single['p99_ms']:7.2f} ms")
    print(f"{SHARDS} shards: {sharded['qps']:8.1f} q/s   "
          f"p50 {sharded['p50_ms']:7.2f} ms   "
          f"p99 {sharded['p99_ms']:7.2f} ms")
    print(f"scaling  : {scaling:.2f}x with {usable_cores} usable cores")

    bench_record(
        "shard",
        metrics={f"shard.scaling_{SHARDS}": round(scaling, 3)},
        details={"sharded": sharded, "single": single,
                 "usable_cores": usable_cores})
    assert scaling >= MIN_SCALING, (
        f"{SHARDS} shard processes only reached {scaling:.2f}x the "
        f"single-process throughput (floor {MIN_SCALING}x)")


def test_one_dead_shard_fails_typed_and_scoped():
    """Kill a member mid-run: its documents fail typed, others serve."""
    data_dir = tempfile.mkdtemp(prefix="repro-bench-shardkill-")
    dblp_xml = generate_dblp(DblpConfig(articles=20, inproceedings=6,
                                        name_pool=10))
    with ShardCluster.spawn(2, data_dir, workers=2,
                            time_limit=None) as cluster:
        with ShardedServer(cluster.endpoints) as mediator:
            mediator.load("alive", xml=dblp_xml)     # -> shard 0
            mediator.load("doomed", xml=dblp_xml)    # -> shard 1
            assert mediator.documents() == {"alive": (0,),
                                            "doomed": (1,)}
            assert mediator.execute("doomed", QUERIES[0])
            cluster.shards[1].kill()
            with pytest.raises(ShardUnavailableError) as info:
                mediator.execute("doomed", QUERIES[0])
            assert info.value.shard == 1
            assert mediator.execute("alive", QUERIES[0])
