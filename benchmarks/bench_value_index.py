"""Secondary value indexes: point/range lookup speedups on DBLP.

The workload is the classic bibliographic lookup: *find the records
where person X appears as editor*, for a person who edits rarely but
authors prolifically (names come from one shared pool).  Without the
index every unindexed access path is expensive — the global text-value
index would fetch every occurrence of the name (mostly authors), and
the editor label is common enough that the chosen plan is
scan-editors-and-filter-children, the exact "label-scan-and-filter"
shape ISSUE 5 targets.  With the index, a ``ValueIndexScan`` touches
only the handful of matching editor entries: O(log n + k).

Two ratio metrics feed the CI regression gate:

* ``value_index.point_speedup`` — equality lookup, indexed vs not
  (the ISSUE-5 acceptance bar is ≥ 5x);
* ``value_index.range_speedup`` — a narrow name-range scan, indexed vs
  not (the unindexed plan has no range access path at all and falls
  back to a full scan).

Both explains are asserted to actually contain ``ValueIndexScan``, so
the gate can never silently measure two identical plans.
"""

import os
import time

from repro.core.dbms import XmlDbms
from repro.workloads.dblp import DblpConfig, generate_dblp

#: Same scale knob as benchmarks/conftest.py (mirrored; see
#: bench_updates.py for why it is not imported).
ARTICLES = int(os.environ.get("REPRO_BENCH_ARTICLES", "500"))

#: The value-index contrast needs duplicate-heavy names and a document
#: big enough that per-query fixed costs don't drown the lookup work:
#: 8x the suite's article scale, a small name pool, an editor on every
#: inproceedings record.
BENCH_DBLP = DblpConfig(articles=ARTICLES * 8,
                        inproceedings=ARTICLES * 2,
                        name_pool=8, editors=ARTICLES * 2)

#: Timed repetitions per measurement (best-of, to shed scheduler noise).
REPEATS = 5

#: Lenient in-bench bars; the committed baseline carries the real
#: floors (point: 5.0 — the ISSUE-5 acceptance target).
MIN_POINT_SPEEDUP = 5.0
MIN_RANGE_SPEEDUP = 2.0


def _best_seconds(session, query: str) -> float:
    session.query("dblp", query)  # warm plan cache and buffer pool
    best = float("inf")
    for __ in range(REPEATS):
        started = time.perf_counter()
        session.query("dblp", query)
        best = min(best, time.perf_counter() - started)
    return best


def test_value_index_speedups(tmp_path_factory, bench_record):
    path = str(tmp_path_factory.mktemp("bench-vi") / "vi.db")
    dbms = XmlDbms(path, buffer_capacity=8192)
    dbms.load("dblp", xml=generate_dblp(BENCH_DBLP))
    session = dbms.session()

    # The name that edits *least* maximises the contrast
    # deterministically: few editor matches, plenty of author noise.
    editor_names = [node.text
                    for node in dbms.execute("dblp", "//editor/text()")]
    name = min(set(editor_names), key=editor_names.count)
    point_query = (f'for $e in //editor return '
                   f'if (some $t in $e/text() satisfies $t = "{name}") '
                   f'then $e else ()')
    range_query = (f'for $e in //editor return '
                   f'if (some $t in $e/text() satisfies '
                   f'($t > "{name[0]}" and $t < "{name[0]}zz")) '
                   f'then $e else ()')

    point_expected = session.query("dblp", point_query)
    range_expected = session.query("dblp", range_query)
    assert point_expected.count("<editor>") >= 1

    unindexed_point = _best_seconds(session, point_query)
    unindexed_range = _best_seconds(session, range_query)

    dbms.create_index("dblp", "editor")
    point_explain = str(session.explain("dblp", point_query))
    range_explain = str(session.explain("dblp", range_query))
    assert "ValueIndexScan" in point_explain, point_explain
    assert "ValueIndexScan" in range_explain, range_explain

    assert session.query("dblp", point_query) == point_expected
    assert session.query("dblp", range_query) == range_expected

    indexed_point = _best_seconds(session, point_query)
    indexed_range = _best_seconds(session, range_query)
    dbms.close()

    point_speedup = unindexed_point / max(indexed_point, 1e-9)
    range_speedup = unindexed_range / max(indexed_range, 1e-9)

    print(f"\npoint lookup: {unindexed_point * 1e3:.2f}ms unindexed, "
          f"{indexed_point * 1e3:.2f}ms indexed "
          f"({point_speedup:.1f}x)  "
          f"range scan: {unindexed_range * 1e3:.2f}ms unindexed, "
          f"{indexed_range * 1e3:.2f}ms indexed "
          f"({range_speedup:.1f}x)")
    bench_record(
        "value_index",
        {"value_index.point_speedup": round(point_speedup, 3),
         "value_index.range_speedup": round(range_speedup, 3)},
        details={"articles": BENCH_DBLP.articles,
                 "lookup_name": name,
                 "unindexed_point_seconds": unindexed_point,
                 "indexed_point_seconds": indexed_point,
                 "unindexed_range_seconds": unindexed_range,
                 "indexed_range_seconds": indexed_range})
    assert point_speedup >= MIN_POINT_SPEEDUP, (
        f"point lookup only {point_speedup:.2f}x faster with the value "
        f"index; expected >= {MIN_POINT_SPEEDUP}")
    assert range_speedup >= MIN_RANGE_SPEEDUP, (
        f"range scan only {range_speedup:.2f}x faster with the value "
        f"index; expected >= {MIN_RANGE_SPEEDUP}")
