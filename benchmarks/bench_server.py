"""The network front door vs. the in-process worker pool, at 16 clients.

``python -m repro.serve`` runs in a subprocess with the benchmark-scale
DBLP document; 16 *processes* (real clients: separate GILs, real
sockets) drive it closed-loop through
:class:`~repro.net.client.NetClient`, executing the same efficiency
suite :mod:`bench_concurrency` uses.  The same total work then runs
against an in-process :class:`~repro.core.server.QueryServer` from 16
threads — the no-network ceiling.

The regression-gated metric is the ratio:

* ``server.network_efficiency_16`` — wire throughput at 16 clients over
  in-process throughput at 16 clients.  It prices everything the front
  door adds: framing, JSON, the asyncio loop, executor hops and
  per-page round trips.  The acceptance bar demands the network layer
  keep at least ~a third of in-process throughput at smoke scale; the
  committed baseline carries the real floor.

Results land in ``BENCH_server.json``.
"""

import multiprocessing
import os
import signal
import statistics
import subprocess
import sys
import time

from repro.core.server import QueryServer
from repro.net import NetClient
from repro.workloads.queries import EFFICIENCY_QUERIES

#: The contested client count (the 16-client point of Figure 7's axis).
CLIENTS = 16
#: Workload suites in total, split evenly across clients — identical
#: work for the wire run and the in-process run.
TOTAL_SUITES = 64
PROFILE = "engine-1"
#: Rows per FETCH: large enough that round trips do not dominate at
#: benchmark scale, small enough to exercise real multi-page streams.
PAGE_SIZE = 256
#: In-bench floor (lenient; ``benchmarks/baseline.json`` has the real
#: gate).
MIN_NETWORK_EFFICIENCY = 0.35

ARTICLES = int(os.environ.get("REPRO_BENCH_ARTICLES", "500"))
QUERIES = [test.xq for test in EFFICIENCY_QUERIES]
JOIN_TIMEOUT = 300.0


def _client_process(host, port, suites, barrier, results):
    """One closed-loop client: warm up, sync on the barrier, run."""
    latencies = []
    with NetClient(host, int(port), timeout=JOIN_TIMEOUT) as client:
        for query in QUERIES:            # warm this connection's path
            client.execute("dblp", query,
                           page_size=PAGE_SIZE).fetchall()
        barrier.wait(timeout=JOIN_TIMEOUT)
        for __ in range(suites):
            for query in QUERIES:
                started = time.perf_counter()
                client.execute("dblp", query,
                               page_size=PAGE_SIZE).fetchall()
                latencies.append(time.perf_counter() - started)
    results.put(latencies)


def _spawn_server():
    """``python -m repro.serve`` on a free port; returns (proc, host, port)."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.pathsep.join(
        [path for path in (env.get("PYTHONPATH"),) if path] + [src])
    inproceedings = max(1, ARTICLES * 3 // 10)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve",
         "--generate", f"dblp=dblp:{ARTICLES}:{inproceedings}:40",
         "--port", "0", "--workers", str(CLIENTS),
         "--max-pending", "256", "--profile", PROFILE,
         "--time-limit", "0", "--log-interval", "0",
         "--buffer-capacity", "4096"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True)
    banner = process.stdout.readline().strip()
    assert banner.startswith("LISTENING "), (
        f"serve failed to start: {banner!r}")
    __, host, port = banner.split()
    return process, host, int(port)


def _network_run(host, port):
    """16 client processes, closed loop; returns the run summary."""
    suites_per_client = TOTAL_SUITES // CLIENTS
    context = multiprocessing.get_context("fork")
    barrier = context.Barrier(CLIENTS + 1)
    results = context.Queue()
    clients = [context.Process(target=_client_process,
                               args=(host, port, suites_per_client,
                                     barrier, results))
               for __ in range(CLIENTS)]
    for client in clients:
        client.start()
    barrier.wait(timeout=JOIN_TIMEOUT)   # every client warmed and ready
    started = time.perf_counter()
    latencies = []
    for __ in clients:
        latencies.extend(results.get(timeout=JOIN_TIMEOUT))
    wall = time.perf_counter() - started
    for client in clients:
        client.join(timeout=JOIN_TIMEOUT)
        assert client.exitcode == 0, (
            f"client process failed with exit code {client.exitcode}")
    executed = len(latencies)
    assert executed == CLIENTS * suites_per_client * len(QUERIES)
    ordered = sorted(latencies)
    return {
        "clients": CLIENTS,
        "queries": executed,
        "wall_seconds": round(wall, 4),
        "qps": executed / wall,
        "p50_ms": round(statistics.median(ordered) * 1e3, 3),
        "p99_ms": round(ordered[min(executed - 1,
                                    int(executed * 0.99))] * 1e3, 3),
    }


def _inprocess_run(dbms):
    """The same work through QueryServer directly, from 16 threads."""
    import threading

    suites_per_client = TOTAL_SUITES // CLIENTS
    latencies = []
    lock = threading.Lock()
    with QueryServer(dbms, workers=CLIENTS, max_pending=256,
                     profile=PROFILE) as server:
        warm = [server.submit("dblp", query, serialize=True)
                for __ in range(CLIENTS) for query in QUERIES]
        for future in warm:
            future.result()

        def client():
            own = []
            for __ in range(suites_per_client):
                for query in QUERIES:
                    started = time.perf_counter()
                    server.query("dblp", query)
                    own.append(time.perf_counter() - started)
            with lock:
                latencies.extend(own)

        threads = [threading.Thread(target=client)
                   for __ in range(CLIENTS)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started
    executed = len(latencies)
    ordered = sorted(latencies)
    return {
        "clients": CLIENTS,
        "queries": executed,
        "wall_seconds": round(wall, 4),
        "qps": executed / wall,
        "p50_ms": round(statistics.median(ordered) * 1e3, 3),
        "p99_ms": round(ordered[min(executed - 1,
                                    int(executed * 0.99))] * 1e3, 3),
    }


def test_network_serving_throughput(bench_dbms, bench_record):
    process, host, port = _spawn_server()
    try:
        # Answers over the wire must match the in-process engine before
        # their speeds are worth comparing.
        session = bench_dbms.session(profile=PROFILE)
        with NetClient(host, port, timeout=JOIN_TIMEOUT) as client:
            for query in QUERIES:
                assert client.query("dblp", query) \
                    == session.query("dblp", query)
        network = _network_run(host, port)
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=60.0) == 0, \
            "serve subprocess did not shut down cleanly"
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()
    inprocess = _inprocess_run(bench_dbms)

    print(f"\nin-process {inprocess['clients']:3d} clients: "
          f"{inprocess['qps']:8.1f} q/s   p50 {inprocess['p50_ms']:7.2f} ms"
          f"   p99 {inprocess['p99_ms']:7.2f} ms")
    print(f"network    {network['clients']:3d} clients: "
          f"{network['qps']:8.1f} q/s   p50 {network['p50_ms']:7.2f} ms"
          f"   p99 {network['p99_ms']:7.2f} ms")

    network_efficiency = network["qps"] / inprocess["qps"]
    bench_record(
        "server",
        {"server.network_efficiency_16": round(network_efficiency, 3)},
        details={"profile": PROFILE,
                 "total_suites": TOTAL_SUITES,
                 "page_size": PAGE_SIZE,
                 "network": network,
                 "inprocess": inprocess})

    assert network_efficiency >= MIN_NETWORK_EFFICIENCY, (
        f"network serving overhead too high: wire throughput at "
        f"{CLIENTS} clients is only {network_efficiency:.2f}x of "
        f"in-process (floor {MIN_NETWORK_EFFICIENCY}x)")
