"""Loader and correctness-suite benchmarks (Section 4's testbed cost).

* bulk loading (sorted B+-tree builds) vs. streaming insertion;
* the 16-query correctness suite end-to-end on the milestone-4 engine
  (what one submission cost the course's test machine).
"""

import pytest

from repro.storage.db import Database
from repro.workloads.dblp import DblpConfig, generate_dblp
from repro.workloads.queries import CORRECTNESS_QUERIES
from repro.xasr.loader import load_document

LOAD_CONFIG = DblpConfig(articles=200, inproceedings=60)


@pytest.fixture(scope="module")
def xml():
    return generate_dblp(LOAD_CONFIG)


def test_benchmark_bulk_load(benchmark, tmp_path, xml):
    counter = iter(range(10**6))

    def load():
        with Database.create(str(tmp_path /
                                 f"bulk{next(counter)}.db")) as db:
            return load_document(db, "d", xml=xml, bulk=True).total_nodes

    nodes = benchmark.pedantic(load, rounds=3, iterations=1)
    assert nodes > 1000


def test_benchmark_streaming_load(benchmark, tmp_path, xml):
    counter = iter(range(10**6))

    def load():
        with Database.create(str(tmp_path /
                                 f"str{next(counter)}.db")) as db:
            return load_document(db, "d", xml=xml,
                                 bulk=False).total_nodes

    nodes = benchmark.pedantic(load, rounds=1, iterations=1)
    assert nodes > 1000


def test_benchmark_correctness_suite(benchmark, bench_dbms):
    """One full public-suite pass on the milestone-4 engine."""

    def suite():
        return [bench_dbms.query("dblp", xq, profile="m4")
                for xq in CORRECTNESS_QUERIES.values()]

    results = benchmark.pedantic(suite, rounds=1, iterations=1)
    assert len(results) == 16
