"""Concurrent serving: the Figure-7 workload from N closed-loop clients.

The paper timed five engines running the efficiency suite one query at a
time; the serving layer's question is what happens when the *same
workload* arrives from many clients at once.  Each client thread drives
a :class:`~repro.core.server.QueryServer` synchronously (submit, wait,
submit the next — a closed loop), so offered load scales with the client
count while total work stays fixed: every client count executes the same
number of workload suites, split evenly across clients.

Measured per client count (1 / 4 / 16 / 64):

* **throughput** — completed queries per second over the whole run;
* **latency** — per-query p50/p99, measured from submission to result
  (queue wait included, exactly what a caller experiences).

Two relative metrics feed the CI regression gate (absolute numbers are
machine-bound; ratios are not):

* ``concurrency.single_client_efficiency`` — server throughput at one
  client over bare-session serial throughput: what the queue, futures
  and worker hand-off cost.  The acceptance bar asserts serving adds at
  most ~2x overhead at smoke scale (in practice it is far cheaper).
* ``concurrency.scaling_4`` — throughput at 4 clients over 1 client.
  Pure-Python execution under the GIL cannot scale CPU-bound work, so
  the bar only demands that concurrency does not *collapse* throughput.

Results land in ``BENCH_concurrency.json``.
"""

import statistics
import threading
import time

from repro.core.server import QueryServer
from repro.workloads.queries import EFFICIENCY_QUERIES

#: Closed-loop client counts (the Figure-7 axis of the serving story).
CLIENT_COUNTS = [1, 4, 16, 64]
#: Workload suites executed at *every* client count (divided evenly), so
#: throughput numbers compare equal work.
TOTAL_SUITES = 64
#: engine-1 finishes all five efficiency tests (Figure 7's winner); the
#: serving benchmark wants throughput, not timeouts.
PROFILE = "engine-1"

#: Acceptance bars (lenient: CI runners jitter; the committed baseline
#: carries the real floors).
MIN_SINGLE_CLIENT_EFFICIENCY = 0.5
MIN_SCALING_4 = 0.3

QUERIES = [test.xq for test in EFFICIENCY_QUERIES]


def _serial_qps(dbms, suites: int = 8) -> float:
    """Bare-session throughput: the no-serving-layer baseline."""
    session = dbms.session(profile=PROFILE)
    for query in QUERIES:                      # warm plans + buffer pool
        session.query("dblp", query)
    started = time.perf_counter()
    for __ in range(suites):
        for query in QUERIES:
            session.query("dblp", query)
    elapsed = time.perf_counter() - started
    return suites * len(QUERIES) / elapsed


def _served_run(dbms, clients: int) -> dict:
    """Throughput + latency percentiles at one client count."""
    suites_per_client = TOTAL_SUITES // clients
    latencies: list[float] = []
    lock = threading.Lock()

    with QueryServer(dbms, workers=clients,
                     max_pending=max(64, clients * len(QUERIES) * 2),
                     profile=PROFILE) as server:
        # Warm every worker's session (plan caches are per worker): the
        # warm-up burst is submitted all at once so every worker is busy
        # compiling — sequential warm-ups could all land on one idle
        # worker and leave the rest to compile inside the timed run.
        warm = [server.submit("dblp", query)
                for __ in range(clients) for query in QUERIES]
        for future in warm:
            future.result()

        def client() -> None:
            own: list[float] = []
            for __ in range(suites_per_client):
                for query in QUERIES:
                    started = time.perf_counter()
                    server.query("dblp", query)
                    own.append(time.perf_counter() - started)
            with lock:
                latencies.extend(own)

        threads = [threading.Thread(target=client) for __ in range(clients)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started

    executed = len(latencies)
    assert executed == clients * suites_per_client * len(QUERIES)
    ordered = sorted(latencies)
    return {
        "clients": clients,
        "queries": executed,
        "wall_seconds": round(wall, 4),
        "qps": executed / wall,
        "p50_ms": round(statistics.median(ordered) * 1e3, 3),
        "p99_ms": round(ordered[min(executed - 1,
                                    int(executed * 0.99))] * 1e3, 3),
    }


def test_concurrent_serving_throughput(bench_dbms, bench_record):
    serial_qps = _serial_qps(bench_dbms)
    runs = {clients: _served_run(bench_dbms, clients)
            for clients in CLIENT_COUNTS}

    print(f"\nserial (no server): {serial_qps:8.1f} q/s")
    for run in runs.values():
        print(f"{run['clients']:3d} clients: {run['qps']:8.1f} q/s   "
              f"p50 {run['p50_ms']:7.2f} ms   p99 {run['p99_ms']:7.2f} ms")

    single_client_efficiency = runs[1]["qps"] / serial_qps
    scaling_4 = runs[4]["qps"] / runs[1]["qps"]
    bench_record(
        "concurrency",
        {"concurrency.single_client_efficiency":
         round(single_client_efficiency, 3),
         "concurrency.scaling_4": round(scaling_4, 3)},
        details={"serial_qps": round(serial_qps, 1),
                 "profile": PROFILE,
                 "total_suites": TOTAL_SUITES,
                 "runs": {str(clients): run
                          for clients, run in runs.items()}})

    assert single_client_efficiency >= MIN_SINGLE_CLIENT_EFFICIENCY, (
        f"serving layer overhead too high: 1-client throughput is only "
        f"{single_client_efficiency:.2f}x of serial "
        f"(floor {MIN_SINGLE_CLIENT_EFFICIENCY}x)")
    assert scaling_4 >= MIN_SCALING_4, (
        f"throughput collapsed under concurrency: 4 clients run at "
        f"{scaling_4:.2f}x of 1 client (floor {MIN_SCALING_4}x)")


def test_served_results_identical_to_serial(bench_dbms):
    """The speed comparison is only meaningful if answers match."""
    session = bench_dbms.session(profile=PROFILE)
    expected = {query: session.query("dblp", query) for query in QUERIES}
    with QueryServer(bench_dbms, workers=8, max_pending=256,
                     profile=PROFILE) as server:
        futures = [(query, server.submit("dblp", query, serialize=True))
                   for __ in range(4) for query in QUERIES]
        for query, future in futures:
            assert future.result(timeout=120.0) == expected[query]
