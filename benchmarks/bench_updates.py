"""Update throughput and crash-recovery speed on the DBLP workload.

Three ratio metrics feed the CI regression gate (ratios, not absolute
rates, so the gate is robust to runner speed):

* ``updates.point_speedup_vs_reload`` — committed point updates
  (``replace value of``) per unit time versus full-document reloads per
  unit time.  This is the case for *incremental* maintenance: a point
  update rewrites one record and one index entry (plus a WAL commit
  fsync), while the pre-update way to change a stored document was to
  reload it wholesale.
* ``updates.recovery_speedup_vs_reload`` — WAL redo of a burst of
  committed-but-unapplied updates versus reloading the document from
  XML.  Recovery replays page images; it must never be slower than
  abandoning the file and reloading.
* ``updates.read_p99_mixed_ratio`` — read-only p99 latency over mixed
  95/5 read/write p99 latency at 64 clients.  This is the MVCC claim:
  snapshot readers are never blocked by writers, so adding a 5% write
  stream must not blow up the read tail (1.0 = no degradation; the
  committed floor of 0.5 allows at most a 2x tail inflation).

The read path is asserted elsewhere: the WAL stamps LSNs on *log
records only* — page layout is untouched — so the vectorized/prepared
read benchmarks in the same CI job double as the no-regression check.

Absolute updates/sec and recovery milliseconds land in the details of
``BENCH_updates.json``.
"""

import os
import random
import threading
import time

from repro.core.dbms import XmlDbms
from repro.storage.db import Database
from repro.workloads.dblp import DblpConfig, generate_dblp

#: Same scale knob as benchmarks/conftest.py (import from conftest is
#: unreliable across pytest invocation styles, so the config is mirrored).
ARTICLES = int(os.environ.get("REPRO_BENCH_ARTICLES", "500"))
BENCH_DBLP = DblpConfig(articles=ARTICLES,
                        inproceedings=max(1, ARTICLES * 3 // 10),
                        name_pool=40)

#: Committed point updates in the throughput measurement.
POINT_UPDATES = 40
#: Structural appends committed into the WAL for the recovery replay.
RECOVERY_UPDATES = 32

#: Mixed-workload geometry: 64 clients, 95% reads / 5% updates.
MIXED_CLIENTS = 64
MIXED_OPS_PER_CLIENT = 24
#: Per-client reads at the start of a phase that are not recorded: the
#: all-clients-at-once start produces a convoy whose tail is pure
#: scheduler noise, identical in both phases but huge in variance.
MIXED_WARMUP_OPS = 4
#: Each phase runs twice and the samples pool, halving p99 jitter.
MIXED_ROUNDS = 2
MIXED_WRITE_FRACTION = 0.05

#: Lenient in-bench bars; the committed baseline carries the real floors.
MIN_POINT_SPEEDUP = 2.0
MIN_RECOVERY_SPEEDUP = 0.7
MIN_READ_P99_MIXED_RATIO = 0.4


def test_update_throughput_and_recovery(tmp_path_factory, bench_record):
    path = str(tmp_path_factory.mktemp("bench-upd") / "upd.db")
    dblp_xml = generate_dblp(BENCH_DBLP)

    dbms = XmlDbms(path, buffer_capacity=4096)
    dbms.load("dblp", xml=dblp_xml)
    dbms.update("dblp",
                'insert node <bench-counter>0</bench-counter> '
                'as last into /dblp')

    # -- baseline: full-document reload ------------------------------------
    started = time.perf_counter()
    dbms.load("reload", xml=dblp_xml)
    reload_seconds = time.perf_counter() - started
    dbms.drop("reload")

    # -- point updates (replace value, committed + fsynced each) -----------
    statement = ("declare variable $v external; replace value of node "
                 "/dblp/bench-counter/text() with $v")
    dbms.update("dblp", statement, bindings={"v": "warmup"})
    started = time.perf_counter()
    for i in range(POINT_UPDATES):
        dbms.update("dblp", statement, bindings={"v": f"tick-{i}"})
    point_seconds = time.perf_counter() - started
    per_update = point_seconds / POINT_UPDATES
    point_speedup = reload_seconds / per_update

    # Reads reflect the last committed value.
    assert "tick-" in dbms.query("dblp", "/dblp/bench-counter")

    # -- recovery: redo a committed burst from the WAL ----------------------
    # Snapshot the database file, commit a burst of appends with
    # checkpointing disabled, snapshot the log, then restore the old
    # file image: exactly the state a crash leaves behind after the
    # write-backs were lost.
    dbms.db.checkpoint()
    with open(path, "rb") as handle:
        before = handle.read()
    dbms.db.checkpoint_interval = 10 ** 9
    for i in range(RECOVERY_UPDATES):
        dbms.update("dblp",
                    f"insert node <bench-entry>r{i}</bench-entry> "
                    f"as last into /dblp")
    with open(path + ".wal", "rb") as handle:
        wal_bytes = handle.read()
    expected = len(dbms.execute("dblp", "//bench-entry"))
    dbms.db.pager._file.close()
    dbms.db._wal.close()
    with open(path, "wb") as handle:
        handle.write(before)
    with open(path + ".wal", "wb") as handle:
        handle.write(wal_bytes)

    started = time.perf_counter()
    recovered_db = Database.open(path, buffer_capacity=4096)
    recovery_seconds = time.perf_counter() - started
    report = recovered_db.last_recovery
    recovered_db.close()
    assert report is not None
    assert report.transactions_replayed == RECOVERY_UPDATES
    recovery_speedup = reload_seconds / max(recovery_seconds, 1e-9)

    with XmlDbms(path, buffer_capacity=4096) as reopened:
        assert len(reopened.execute("dblp", "//bench-entry")) == expected

    print(f"\nreload: {reload_seconds * 1e3:.1f}ms  "
          f"point update: {per_update * 1e3:.2f}ms "
          f"({point_speedup:.1f}x reload)  "
          f"recovery of {RECOVERY_UPDATES} txns: "
          f"{recovery_seconds * 1e3:.1f}ms "
          f"({recovery_speedup:.1f}x reload)")
    bench_record(
        "updates",
        {"updates.point_speedup_vs_reload": round(point_speedup, 3),
         "updates.recovery_speedup_vs_reload": round(recovery_speedup, 3)},
        details={"reload_seconds": reload_seconds,
                 "point_updates": POINT_UPDATES,
                 "updates_per_second": 1.0 / per_update,
                 "recovery_updates": RECOVERY_UPDATES,
                 "recovery_seconds": recovery_seconds,
                 "pages_replayed": report.pages_applied})
    assert point_speedup >= MIN_POINT_SPEEDUP, (
        f"point update only {point_speedup:.2f}x faster than reload")
    assert recovery_speedup >= MIN_RECOVERY_SPEEDUP, (
        f"recovery {recovery_speedup:.2f}x of reload; expected "
        f">= {MIN_RECOVERY_SPEEDUP}")


def _p99(samples: list[float]) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]


def test_mixed_read_write_tail_latency(tmp_path_factory, bench_record):
    """Read p99 under 95/5 mixed load vs. read-only, 64 clients.

    Snapshot reads never take the writers' lock, so the mixed tail must
    stay within a small factor of the read-only tail; a return to
    blocking (readers queueing behind update latches, or behind a
    group-commit fsync) shows up here as a collapsing ratio.
    """
    path = str(tmp_path_factory.mktemp("bench-mix") / "mix.db")
    dbms = XmlDbms(path, buffer_capacity=4096)
    dbms.load("dblp", xml=generate_dblp(BENCH_DBLP))
    dbms.update("dblp",
                'insert node <bench-counter>0</bench-counter> '
                'as last into /dblp')
    update = ("declare variable $v external; replace value of node "
              "/dblp/bench-counter/text() with $v")
    read_query = "/dblp/bench-counter"

    def run_phase(write_fraction: float) -> tuple[list[float], int]:
        latencies: list[float] = []
        lock = threading.Lock()
        errors: list[BaseException] = []
        writes = [0]
        barrier = threading.Barrier(MIXED_CLIENTS, timeout=120)

        def client(cid: int) -> None:
            try:
                rng = random.Random(cid)
                session = dbms.session()
                # Warm the plan cache outside the measured window.
                with dbms.read_ticket("dblp"):
                    session.query("dblp", read_query)
                own: list[float] = []
                barrier.wait()
                for k in range(MIXED_OPS_PER_CLIENT):
                    if rng.random() < write_fraction:
                        dbms.update("dblp", update,
                                    bindings={"v": f"c{cid}k{k}"})
                        with lock:
                            writes[0] += 1
                        continue
                    started = time.perf_counter()
                    with dbms.read_ticket("dblp"):
                        session.query("dblp", read_query)
                    if k >= MIXED_WARMUP_OPS:
                        own.append(time.perf_counter() - started)
                with lock:
                    latencies.extend(own)
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                errors.append(exc)

        workers = [threading.Thread(target=client, args=(cid,),
                                    daemon=True)
                   for cid in range(MIXED_CLIENTS)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=300)
            assert not worker.is_alive(), "mixed-load client hung"
        assert not errors, errors[0]
        return latencies, writes[0]

    read_only: list[float] = []
    mixed: list[float] = []
    mixed_writes = 0
    # Alternate the phases so drift (page cache, allocator state)
    # spreads evenly instead of biasing one side.
    for __ in range(MIXED_ROUNDS):
        samples, __w = run_phase(0.0)
        read_only.extend(samples)
        samples, wrote = run_phase(MIXED_WRITE_FRACTION)
        mixed.extend(samples)
        mixed_writes += wrote
    assert mixed_writes > 0, "the mixed phase never wrote"
    p99_read_only = _p99(read_only)
    p99_mixed = _p99(mixed)
    ratio = p99_read_only / max(p99_mixed, 1e-9)
    stats = dbms.mvcc_stats()
    dbms.close()

    print(f"\nread-only p99: {p99_read_only * 1e3:.2f}ms  "
          f"mixed 95/5 p99: {p99_mixed * 1e3:.2f}ms  "
          f"ratio: {ratio:.2f}  ({mixed_writes} writes, "
          f"{stats['fsyncs_saved']} fsyncs saved)")
    bench_record(
        "updates",
        {"updates.read_p99_mixed_ratio": round(ratio, 3)},
        details={"mixed_clients": MIXED_CLIENTS,
                 "ops_per_client": MIXED_OPS_PER_CLIENT,
                 "write_fraction": MIXED_WRITE_FRACTION,
                 "mixed_writes": mixed_writes,
                 "read_only_p99_ms": p99_read_only * 1e3,
                 "mixed_p99_ms": p99_mixed * 1e3,
                 "group_commits": stats["group_commits"],
                 "fsyncs_saved": stats["fsyncs_saved"],
                 "versioned_reads": stats["versioned_reads"]})
    assert ratio >= MIN_READ_P99_MIXED_RATIO, (
        f"mixed read p99 ratio {ratio:.2f}; expected "
        f">= {MIN_READ_P99_MIXED_RATIO}")
