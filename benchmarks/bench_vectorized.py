"""Block-at-a-time vs item-at-a-time execution throughput.

The physical layer runs vectorized: operators exchange batches of up to
``batch_size`` binding tuples, paying Python interpreter overhead
(generator resumption, deadline checks, memory charges) once per block
instead of once per row.  Driving the very same operator tree with
``batch_size=1`` recovers the classic item-at-a-time protocol — every
``next()`` returns a single row — which makes a clean A/B baseline: any
measured gap is pure per-row interpreter overhead, with identical plans,
storage and results on both sides.

Two measurements per workload, both over the benchmark-scale documents:

* **pipeline** — a scan → filter → project operator pipeline driven
  directly through ``PhysicalOp.batches``; the acceptance bar for the
  vectorized engine is ≥ 1.5x on DBLP (treebank must clear 1.3x);
* **query** — a full prepared-query execution through the session API
  (plans, relfor evaluation, cursors), recorded for the JSON report.

Results are written to ``BENCH_vectorized.json`` for the CI
perf-regression gate (see ``benchmarks/check_regression.py``).
"""

import time

import pytest

from repro.algebra.ra import Attr, Compare, Const, EQ
from repro.physical.context import Bindings, ExecutionContext
from repro.physical.operators import FullScan, ProjectBindings
from repro.xasr.document import StoredDocument
from repro.xasr.schema import ELEMENT

#: The vectorized block size under test (the engine default).
VECTOR_BATCH = 256
#: Acceptance bars for batched over item-at-a-time pipeline throughput.
MIN_DBLP_SPEEDUP = 1.5
MIN_TREEBANK_SPEEDUP = 1.3
#: Best-of-N timing to shave scheduler noise.
TIMING_ROUNDS = 5

#: Session-level workload: scan-heavy, near-empty result, so measured
#: time is operator work rather than result construction.  Run under the
#: m3 profile (no label index), whose plans really scan — the m4 planner
#: answers this query straight off the value index in microseconds,
#: which leaves nothing to measure.
DBLP_QUERY = (
    "for $a in //article return for $n in $a/author return "
    'if (some $x in $n/text() satisfies $x = "zz-no-such-author") '
    "then <hit/> else ()")
QUERY_PROFILE = "m3"


def _pipeline(alias: str) -> ProjectBindings:
    """Filtered scan → one-pass project, the planner's bread-and-butter
    shape (selections pushed into the access path)."""
    scan = FullScan(alias, [Compare(Attr(alias, "type"), EQ,
                                    Const(ELEMENT))])
    return ProjectBindings(scan, (alias,), assume_sorted=True)


def _time_pipeline(document: StoredDocument,
                   batch_size: int) -> tuple[float, int]:
    """Best-of-N seconds to drain the pipeline, and the row count."""
    plan = _pipeline("A")
    env = {"#root": document.root()}
    best = float("inf")
    rows = 0
    for __ in range(TIMING_ROUNDS):
        ctx = ExecutionContext(document, batch_size=batch_size)
        count = 0
        started = time.perf_counter()
        for batch in plan.batches(ctx, Bindings(env)):
            count += len(batch)
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
        rows = count
    return best, rows


def _time_query(session_factory, batch_size: int) -> float:
    """Best-of-N seconds for a full prepared execution at a block size."""
    best = float("inf")
    for __ in range(TIMING_ROUNDS):
        prepared, kwargs = session_factory()
        started = time.perf_counter()
        with prepared.execute(batch_size=batch_size, **kwargs) as cursor:
            cursor.fetchall()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.mark.parametrize("workload,bar", [
    ("dblp", MIN_DBLP_SPEEDUP),
    ("treebank", MIN_TREEBANK_SPEEDUP),
])
def test_pipeline_batched_vs_item_at_a_time(bench_dbms, bench_record,
                                            workload, bar):
    """The operator pipeline is ≥ bar× faster batched than row-by-row."""
    document = StoredDocument(bench_dbms.db, workload)
    # Warm the buffer pool so both timings run from cache.
    _time_pipeline(document, VECTOR_BATCH)

    item_seconds, item_rows = _time_pipeline(document, 1)
    batched_seconds, batched_rows = _time_pipeline(document, VECTOR_BATCH)
    assert item_rows == batched_rows  # identical results either way

    speedup = item_seconds / batched_seconds
    print(f"\n{workload}: item-at-a-time {item_seconds:.4f}s  "
          f"batched({VECTOR_BATCH}) {batched_seconds:.4f}s  "
          f"speedup {speedup:.1f}x over {item_rows} rows")
    bench_record("vectorized",
                 {f"vectorized.{workload}.pipeline_speedup":
                  round(speedup, 3)},
                 details={f"{workload}_pipeline": {
                     "rows": item_rows,
                     "item_seconds": item_seconds,
                     "batched_seconds": batched_seconds,
                     "batch_size": VECTOR_BATCH}})
    assert speedup >= bar, (
        f"batched pipeline only {speedup:.2f}x faster on {workload}; "
        f"expected >= {bar}x")


def test_query_throughput_recorded(bench_dbms, bench_record):
    """Full prepared-query execution, batched vs item-at-a-time.

    Recorded for the JSON report (the end-to-end path includes per-row
    relfor body evaluation, which vectorization does not touch, so the
    gap is smaller than the pipeline's); batched must at least not lose.
    """
    session = bench_dbms.session(profile=QUERY_PROFILE)
    prepared = session.prepare("dblp", DBLP_QUERY)

    def factory():
        return prepared, {}

    _time_query(factory, VECTOR_BATCH)  # warm caches
    item_seconds = _time_query(factory, 1)
    batched_seconds = _time_query(factory, VECTOR_BATCH)
    speedup = item_seconds / batched_seconds
    print(f"\ndblp query: item-at-a-time {item_seconds:.4f}s  "
          f"batched({VECTOR_BATCH}) {batched_seconds:.4f}s  "
          f"speedup {speedup:.1f}x")
    bench_record("vectorized",
                 {"vectorized.dblp.query_speedup": round(speedup, 3)},
                 details={"dblp_query": {
                     "query": DBLP_QUERY,
                     "item_seconds": item_seconds,
                     "batched_seconds": batched_seconds,
                     "batch_size": VECTOR_BATCH}})
    # Noise-tolerant floor only (shared CI runners jitter at this
    # scale); the baseline gate carries the real threshold.
    assert speedup >= 0.8, (
        f"batched end-to-end execution regressed: {speedup:.2f}x")


def test_tracing_hook_overhead_recorded(bench_dbms, bench_record):
    """The EXPLAIN ANALYZE hook is free when no profiler is attached.

    Every ``PhysicalOp`` subclass's ``batches`` is wrapped at class
    creation (``repro.physical.operators._profiled``); with
    ``ctx.profiler is None`` the wrapper is one attribute read and a
    None check per operator per execution.  Measured here by driving
    the same pipeline with the wrapper in place and with the pristine
    implementations (``__wrapped__``) swapped back in; the ratio is
    gated by the perf baseline (floor 0.95 — within noise of 1.0).
    """
    document = StoredDocument(bench_dbms.db, "dblp")
    _time_pipeline(document, VECTOR_BATCH)  # warm the buffer pool
    hooked_seconds, hooked_rows = _time_pipeline(document, VECTOR_BATCH)

    targets = [(cls, cls.batches) for cls in (FullScan, ProjectBindings)]
    try:
        for cls, hook in targets:
            cls.batches = hook.__wrapped__
        bare_seconds, bare_rows = _time_pipeline(document, VECTOR_BATCH)
    finally:
        for cls, hook in targets:
            cls.batches = hook
    assert hooked_rows == bare_rows

    ratio = bare_seconds / hooked_seconds
    print(f"\ntracing hook: bare {bare_seconds:.4f}s  "
          f"hooked {hooked_seconds:.4f}s  ratio {ratio:.3f} "
          f"over {hooked_rows} rows")
    bench_record("vectorized",
                 {"obs.tracing_overhead_ratio": round(ratio, 3)},
                 details={"tracing_overhead": {
                     "rows": hooked_rows,
                     "bare_seconds": bare_seconds,
                     "hooked_seconds": hooked_seconds,
                     "batch_size": VECTOR_BATCH}})
    # Loose local floor (shared runners jitter); the baseline gate
    # carries the real 0.95 threshold.
    assert ratio >= 0.75, (
        f"tracing-disabled hook costs too much: ratio {ratio:.3f}")


def test_batched_results_match_item_at_a_time(bench_dbms):
    """Same answers at every block size (the A/B comparison is fair)."""
    session = bench_dbms.session(profile=QUERY_PROFILE)
    prepared = session.prepare("dblp", DBLP_QUERY)
    expected = prepared.query(batch_size=1)
    for batch_size in (2, 7, VECTOR_BATCH):
        assert prepared.query(batch_size=batch_size) == expected
