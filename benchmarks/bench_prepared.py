"""Prepared-query throughput: the case for the session API.

A parameterized lookup executed many times with different parameter
values — the canonical OLTP client pattern.  The one-shot path
(``dbms.query`` with the parameter interpolated into the query text)
re-tokenizes, re-parses, re-translates and re-plans on every call; the
prepared path (``session.prepare`` + ``execute(bindings=...)``) pays for
compilation once and reuses the cached physical plans, so per-call work
collapses to execution proper.

The acceptance bar for the session API redesign: prepared execution is at
least 2x the throughput of the one-shot path on the DBLP workload.  (The
measured gap is typically 3-5x at default scale and grows with query
complexity, since planning cost scales with the number of join orders
considered while this query's execution cost is bounded by the handful of
erratum nodes.)
"""

import time

import pytest

#: One-shot form: the parameter is spliced into the query text, as a
#: client without prepared statements would do.
ONE_SHOT_TEMPLATE = (
    "for $e in //erratum return for $n in $e/note return "
    'if (some $t in $n/text() satisfies $t = "{param}") '
    "then <hit>{{ $n }}</hit> else ()")

#: Prepared form: the same query with the parameter as an external
#: variable, compiled once.
PREPARED_QUERY = (
    "declare variable $w external; "
    "for $e in //erratum return for $n in $e/note return "
    "if (some $t in $n/text() satisfies $t = $w) "
    "then <hit>{ $n }</hit> else ()")

REPEATS = 60


def _params():
    return [f"param-{i}" for i in range(REPEATS)]


def test_prepared_vs_one_shot_throughput(bench_dbms, bench_record):
    """Prepared parameterized execution is ≥ 2x one-shot ``query()``."""
    session = bench_dbms.session()
    prepared = session.prepare("dblp", PREPARED_QUERY)

    # Warm both paths (buffer pool, engine caches) outside the timing.
    bench_dbms.query("dblp", ONE_SHOT_TEMPLATE.format(param="warmup"))
    prepared.query(bindings={"w": "warmup"})

    started = time.perf_counter()
    for param in _params():
        bench_dbms.query("dblp", ONE_SHOT_TEMPLATE.format(param=param))
    one_shot_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for param in _params():
        prepared.query(bindings={"w": param})
    prepared_seconds = time.perf_counter() - started

    speedup = one_shot_seconds / prepared_seconds
    print(f"\none-shot: {one_shot_seconds:.4f}s  "
          f"prepared: {prepared_seconds:.4f}s  "
          f"speedup: {speedup:.1f}x over {REPEATS} executions")
    bench_record("prepared", {"prepared.speedup": round(speedup, 3)},
                 details={"repeats": REPEATS,
                          "one_shot_seconds": one_shot_seconds,
                          "prepared_seconds": prepared_seconds})
    assert speedup >= 2.0, (
        f"prepared path only {speedup:.2f}x faster; expected >= 2x")


def test_prepared_results_match_one_shot(bench_dbms):
    """Same answers through both paths (binding vs. inlined constant)."""
    prepared = bench_dbms.session().prepare("dblp", PREPARED_QUERY)
    for param in ("warmup", "param-0"):
        expected = bench_dbms.query(
            "dblp", ONE_SHOT_TEMPLATE.format(param=param))
        assert prepared.query(bindings={"w": param}) == expected


@pytest.mark.parametrize("mode", ["one-shot", "prepared"])
def test_benchmark_parameterized_lookup(benchmark, bench_dbms, mode):
    """pytest-benchmark timings for the two client patterns."""
    if mode == "one-shot":
        counter = iter(range(10**9))

        def run():
            param = f"param-{next(counter)}"
            bench_dbms.query("dblp",
                             ONE_SHOT_TEMPLATE.format(param=param))
    else:
        prepared = bench_dbms.session().prepare("dblp", PREPARED_QUERY)
        counter = iter(range(10**9))

        def run():
            param = f"param-{next(counter)}"
            prepared.query(bindings={"w": param})

    benchmark(run)
