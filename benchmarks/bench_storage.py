"""Storage-substrate microbenchmarks.

Not a paper table, but the foundation its milestones stand on: B+-tree
point/range access vs. full scans, bulk loading vs. one-at-a-time
insertion, and buffer-pool locality — the quantities the milestone-4
cost model models.
"""

import pytest

from repro.storage.btree import BTree
from repro.storage.buffer import BufferPool
from repro.storage.pager import Pager
from repro.storage.record import encode_key

N = 5_000


@pytest.fixture
def pool(tmp_path):
    pager = Pager(str(tmp_path / "bench.db"), create=True)
    pool = BufferPool(pager, capacity=512)
    yield pool
    pager.close()


@pytest.fixture
def loaded_tree(pool):
    tree = BTree.create(pool)
    tree.bulk_load((encode_key((key,)), b"v%d" % key)
                   for key in range(N))
    return tree


def test_benchmark_btree_random_inserts(benchmark, pool):
    import random

    keys = list(range(N))
    random.Random(7).shuffle(keys)

    def build():
        tree = BTree.create(pool)
        for key in keys:
            tree.insert(encode_key((key,)), b"v")
        return tree

    tree = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(tree) == N


def test_benchmark_btree_bulk_load(benchmark, pool):
    items = [(encode_key((key,)), b"v") for key in range(N)]

    def build():
        tree = BTree.create(pool)
        tree.bulk_load(iter(items))
        return tree

    tree = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(tree) == N


def test_benchmark_btree_point_lookups(benchmark, loaded_tree):
    probes = [encode_key((key,)) for key in range(0, N, 97)]

    def lookups():
        return sum(loaded_tree.search(probe) is not None
                   for probe in probes)

    assert benchmark(lookups) == len(probes)


def test_benchmark_btree_range_scan(benchmark, loaded_tree):
    low = encode_key((N // 4,))
    high = encode_key((3 * N // 4,))

    def scan():
        return sum(1 for __ in loaded_tree.range_scan(low, high))

    assert benchmark(scan) == N // 2 + 1


def test_benchmark_full_iteration(benchmark, loaded_tree):
    def iterate():
        return sum(1 for __ in loaded_tree.items())

    assert benchmark(iterate) == N


def test_buffer_pool_locality_of_range_scans(loaded_tree):
    """Sequential leaf-chain scans should be highly cacheable."""
    pool = loaded_tree.buffer_pool
    for __ in range(3):
        sum(1 for __ in loaded_tree.items())
    assert pool.stats.hit_rate > 0.9
