"""Figure 7: "Timing of the Top Five Engines".

Regenerates the paper's headline table: five engine profiles × five
secret efficiency tests, under scaled time/memory limits, with the
capping rules of the figure's caption (over-time → cap, over-memory →
2×cap).

Expected shape (absolute numbers differ — our substrate is a pure-Python
storage manager, the limits are scaled from 2400 s to ~1.5 s):

* engine-1 finishes everything, best total;
* engine-2 is near-instant on tests 1–4 and times out **only** on
  test 5 (the mis-estimated join order);
* engine-3 times out **only** on test 3 (no join reordering) and — like
  the paper's engine 3 — survives test 5 on its syntactic order;
* engine-4 is ~0 on the label-index tests 2 and 4, times out on 3 and 5;
* engine-5 is the slowest finisher and times out on 3 and 5;
* total ordering: engine-1 < engine-2 < engine-3 < engine-4 < engine-5.
"""

import pytest

from benchmarks.conftest import TIME_LIMIT
from repro.grading.tester import Tester, format_figure7
from repro.workloads.queries import EFFICIENCY_QUERIES

ENGINES = ["engine-1", "engine-2", "engine-3", "engine-4", "engine-5"]


@pytest.fixture(scope="module")
def figure7_rows(bench_dbms):
    tester = Tester(bench_dbms, "dblp", time_limit=TIME_LIMIT)
    rows = tester.run_figure7(profiles=ENGINES)
    print("\n\nFigure 7 (scaled: cap = %.1fs instead of 2400s):"
          % TIME_LIMIT)
    print(format_figure7(rows))
    return {row.engine: row for row in rows}


def statuses(row):
    return [result.status for result in row.results]


class TestFigure7Shape:
    """Assert the qualitative shape of the paper's table."""

    def test_engine1_finishes_all_tests(self, figure7_rows):
        assert statuses(figure7_rows["engine-1"]) == ["ok"] * 5

    def test_engine2_fails_exactly_test5(self, figure7_rows):
        row = figure7_rows["engine-2"]
        assert statuses(row)[:4] == ["ok"] * 4
        assert statuses(row)[4] in ("timeout", "memory")

    def test_engine3_fails_exactly_test3(self, figure7_rows):
        row = figure7_rows["engine-3"]
        assert statuses(row)[2] in ("timeout", "memory")
        assert statuses(row)[4] == "ok", \
            "engine-3 survives test 5 on its syntactic order (paper: " \
            "29.70 s)"

    def test_engine4_near_zero_on_label_tests(self, figure7_rows):
        row = figure7_rows["engine-4"]
        assert row.results[1].assigned_seconds < TIME_LIMIT / 10
        assert row.results[3].assigned_seconds < TIME_LIMIT / 10

    def test_engines_4_and_5_time_out_on_3_and_5(self, figure7_rows):
        for engine in ("engine-4", "engine-5"):
            row = figure7_rows[engine]
            assert statuses(row)[2] != "ok"
            assert statuses(row)[4] != "ok"

    def test_total_ordering_matches_paper(self, figure7_rows):
        totals = [figure7_rows[engine].total_seconds
                  for engine in ENGINES]
        assert totals == sorted(totals), totals


@pytest.mark.parametrize("engine", ENGINES)
def test_benchmark_engine_total(benchmark, bench_dbms, engine):
    """pytest-benchmark series: one total-suite run per engine."""
    tester = Tester(bench_dbms, "dblp", time_limit=TIME_LIMIT)

    def run_suite():
        return sum(tester.run_efficiency(engine, query).assigned_seconds
                   for query in EFFICIENCY_QUERIES)

    total = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    assert total >= 0
