"""Ablations of the design choices DESIGN.md calls out.

Each ablation switches one technique off and measures the same query, in
logical page I/O (stable) and wall-clock (benchmark series):

* **vartuple out-values** (the paper's milestone-3 discussion: without
  them the descendant rule needs an extra self-join);
* **relfor merging** (milestone 3's central rewrite);
* **semijoins** (Example 6);
* **order strategy**: order-preserving join orders vs. external sort
  (the students' big discussion point);
* **document order of results is preserved in all cases** — the
  ablations trade performance, never correctness.
"""

import pytest

from repro.engine.profiles import EngineProfile
from repro.optimizer.planner import PlannerConfig

QUERY = ("for $j in //inproceedings return "
         "for $n in $j//author return $n")

EXISTS_QUERY = ("for $x in //article return "
                "if (some $v in $x/volume satisfies true()) "
                "then $x/title else ()")


def profile(name, **planner_kwargs):
    merge = planner_kwargs.pop("merge_relfors", True)
    carry = planner_kwargs.pop("carry_out_values", True)
    return EngineProfile(name=name, description=name,
                         merge_relfors=merge, carry_out_values=carry,
                         planner=PlannerConfig(**planner_kwargs))


ABLATIONS = {
    "full": profile("full"),
    "no-carry-out": profile("no-carry-out", carry_out_values=False),
    "no-merge": profile("no-merge", merge_relfors=False),
    "no-semijoin": profile("no-semijoin", use_semijoin=False),
    "sort-order": profile("sort-order", order_strategy="sort"),
    "preserve-order": profile("preserve-order",
                              order_strategy="preserve"),
}


@pytest.fixture(scope="module")
def reference(bench_dbms):
    return {
        "main": bench_dbms.query("dblp", QUERY, profile="m1"),
        "exists": bench_dbms.query("dblp", EXISTS_QUERY, profile="m1"),
    }


@pytest.mark.parametrize("ablation", sorted(ABLATIONS))
def test_benchmark_ablation(benchmark, bench_dbms, reference, ablation):
    engine = bench_dbms.engine("dblp", ABLATIONS[ablation])
    result = benchmark(engine.execute_serialized, QUERY)
    assert result == reference["main"]


def measure_io(dbms, query, prof):
    dbms.reset_buffer_stats()
    dbms.query("dblp", query, profile=prof)
    return dbms.buffer_stats.accesses


class TestAblationEffects:
    def test_all_ablations_correct(self, bench_dbms, reference):
        for name, prof in ABLATIONS.items():
            assert bench_dbms.query("dblp", EXISTS_QUERY,
                                    profile=prof) == \
                reference["exists"], name

    def test_merging_reduces_io(self, bench_dbms):
        """Un-merged relfors re-evaluate the inner block per binding —
        the paper: 'the relational algebra expression constructed from
        the inner for-loop will be evaluated for each new binding'.
        Visible when the inner loop is uncorrelated with the outer."""
        query = ("for $v in //volume return "
                 "for $e in //erratum return <pair/>")
        reference = bench_dbms.query("dblp", query, profile="m1")
        merged = measure_io(bench_dbms, query, ABLATIONS["full"])
        unmerged = measure_io(bench_dbms, query, ABLATIONS["no-merge"])
        assert bench_dbms.query("dblp", query,
                                profile=ABLATIONS["no-merge"]) == reference
        print(f"\nmerged={merged} unmerged={unmerged}")
        assert merged < unmerged

    def test_semijoin_reduces_io_on_exists_query(self, bench_dbms):
        """With many witnesses per outer binding, the semijoin's
        first-match early-out beats a regular join + dedup.  Compared
        under the order-preserving strategy, where the existence check
        cannot be reordered away."""
        query = ("for $x in //article return "
                 "if (some $a in $x//author satisfies true()) "
                 "then $x/title else ()")
        with_semijoin = profile("p-semi", order_strategy="preserve")
        without = profile("p-nosemi", order_strategy="preserve",
                          use_semijoin=False)
        io_with = measure_io(bench_dbms, query, with_semijoin)
        io_without = measure_io(bench_dbms, query, without)
        print(f"\nsemijoin={io_with} no-semijoin={io_without}")
        assert io_with <= io_without

    def test_carry_out_values_avoids_extra_join(self, bench_dbms):
        """The paper: without out-values in vartuples, computing
        descendants 'requires an additional join'."""
        from repro.algebra.translate import translate
        from repro.algebra.tpm import RelFor
        from repro.xq.parser import parse_query

        with_carry = translate(parse_query(QUERY),
                               carry_out_values=True)
        without = translate(parse_query(QUERY), carry_out_values=False)

        def relation_count(tpm):
            total = 0
            stack = [tpm]
            while stack:
                node = stack.pop()
                if isinstance(node, RelFor):
                    total += len(node.source.relations)
                    stack.append(node.body)
                elif hasattr(node, "body"):
                    stack.append(node.body)
            return total

        assert relation_count(without) > relation_count(with_carry)

    def test_order_strategies_both_deliver_document_order(
            self, bench_dbms, reference):
        for name in ("sort-order", "preserve-order"):
            assert bench_dbms.query("dblp", QUERY,
                                    profile=ABLATIONS[name]) == \
                reference["main"]
