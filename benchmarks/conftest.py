"""Benchmark fixtures: session-scoped databases at benchmark scale.

Scale knobs come from environment variables so the same harness runs both
in CI (small) and at full reproduction scale:

* ``REPRO_BENCH_ARTICLES`` (default 500) — synthetic DBLP size;
* ``REPRO_BENCH_TIME_LIMIT`` (default 1.5 s) — the scaled stand-in for
  the paper's 2400-second cap.
"""

import json
import os

import pytest

from repro.core.dbms import XmlDbms
from repro.workloads.dblp import DblpConfig, generate_dblp
from repro.workloads.treebank import TreebankConfig, generate_treebank

ARTICLES = int(os.environ.get("REPRO_BENCH_ARTICLES", "500"))
TIME_LIMIT = float(os.environ.get("REPRO_BENCH_TIME_LIMIT", "1.5"))

BENCH_DBLP = DblpConfig(articles=ARTICLES,
                        inproceedings=max(1, ARTICLES * 3 // 10),
                        name_pool=40)
BENCH_TREEBANK = TreebankConfig(sentences=max(10, ARTICLES // 5))


@pytest.fixture(scope="session")
def bench_dbms(tmp_path_factory):
    """One database with DBLP and TREEBANK loaded at benchmark scale."""
    path = str(tmp_path_factory.mktemp("bench") / "bench.db")
    with XmlDbms(path, buffer_capacity=4096) as dbms:
        dbms.load("dblp", xml=generate_dblp(BENCH_DBLP))
        dbms.load("treebank", xml=generate_treebank(BENCH_TREEBANK))
        yield dbms


@pytest.fixture(scope="session")
def bench_record():
    """Write machine-readable benchmark results as ``BENCH_<name>.json``.

    ``record(name, metrics, details=...)`` merges into any existing file
    so a benchmark module can report incrementally (partial results
    survive a later test failing).  ``metrics`` keys are the flat,
    fully-qualified names the CI regression gate
    (``benchmarks/check_regression.py``) compares against
    ``benchmarks/baseline.json``; all metrics are higher-is-better.
    Output lands in ``REPRO_BENCH_DIR`` (default: current directory).
    """
    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")

    def record(name: str, metrics: dict, details: dict | None = None):
        path = os.path.join(out_dir, f"BENCH_{name}.json")
        payload = {"benchmark": name, "scale": {
            "articles": ARTICLES, "time_limit": TIME_LIMIT},
            "metrics": {}, "details": {}}
        if os.path.exists(path):
            with open(path, encoding="utf-8") as handle:
                existing = json.load(handle)
            payload["metrics"].update(existing.get("metrics", {}))
            payload["details"].update(existing.get("details", {}))
        payload["metrics"].update(metrics)
        if details:
            payload["details"].update(details)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    return record
