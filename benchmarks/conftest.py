"""Benchmark fixtures: session-scoped databases at benchmark scale.

Scale knobs come from environment variables so the same harness runs both
in CI (small) and at full reproduction scale:

* ``REPRO_BENCH_ARTICLES`` (default 500) — synthetic DBLP size;
* ``REPRO_BENCH_TIME_LIMIT`` (default 1.5 s) — the scaled stand-in for
  the paper's 2400-second cap.
"""

import os

import pytest

from repro.core.dbms import XmlDbms
from repro.workloads.dblp import DblpConfig, generate_dblp
from repro.workloads.treebank import TreebankConfig, generate_treebank

ARTICLES = int(os.environ.get("REPRO_BENCH_ARTICLES", "500"))
TIME_LIMIT = float(os.environ.get("REPRO_BENCH_TIME_LIMIT", "1.5"))

BENCH_DBLP = DblpConfig(articles=ARTICLES,
                        inproceedings=max(1, ARTICLES * 3 // 10),
                        name_pool=40)
BENCH_TREEBANK = TreebankConfig(sentences=max(10, ARTICLES // 5))


@pytest.fixture(scope="session")
def bench_dbms(tmp_path_factory):
    """One database with DBLP and TREEBANK loaded at benchmark scale."""
    path = str(tmp_path_factory.mktemp("bench") / "bench.db")
    with XmlDbms(path, buffer_capacity=4096) as dbms:
        dbms.load("dblp", xml=generate_dblp(BENCH_DBLP))
        dbms.load("treebank", xml=generate_treebank(BENCH_TREEBANK))
        yield dbms
