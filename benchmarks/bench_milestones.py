"""The course's headline claim: "students should get the opportunity to
experience success in speeding up query evaluation by several orders of
magnitude by using the techniques and algorithms taught".

This benchmark runs the same selective query on all four milestone
engines.  The expected ladder: m4 (cost-based + indexes) beats m3
(heuristic algebra) beats m2 (navigational) on selective workloads, with
the gap growing with document size.  (m1 is in-memory: fast per query
but pays the full DOM build and does not scale past RAM.)
"""

import pytest

from repro.workloads.queries import EFFICIENCY_QUERIES

MILESTONES = ["m1", "m2", "m3", "m4"]

#: Selective queries where the taught techniques pay off.
QUERIES = {
    "selective-label": EFFICIENCY_QUERIES[1].xq,       # //erratum/note
    "nonexistent-label": EFFICIENCY_QUERIES[3].xq,     # //phdthesis
    "exists-check": ("for $x in //article return "
                     "if (some $v in $x/volume satisfies true()) "
                     "then $x/title else ()"),
}


@pytest.mark.parametrize("milestone", MILESTONES)
@pytest.mark.parametrize("query_name", sorted(QUERIES))
def test_benchmark_milestone(benchmark, bench_dbms, milestone,
                             query_name):
    query = QUERIES[query_name]
    engine = bench_dbms.engine("dblp", milestone)
    benchmark(engine.execute_serialized, query)


def test_orders_of_magnitude_claim(bench_dbms):
    """The intro's promise: "success in speeding up query evaluation by
    several orders of magnitude by using the techniques and algorithms
    taught in the course".

    Measured in logical page accesses (stable across machines): the
    fully naive plan (QP0-style: products + post-filters, milestone-2
    knowledge only) against the milestone-4 optimizer, on the Example 6
    query.  The QP0/QP2 gap in the companion Figure 6 benchmark is
    ~4 orders of magnitude; here we assert a conservative 2.
    """
    from benchmarks.bench_figure6_plans import PLANS, QUERY as E6

    io = {}
    for name in ("QP0", "QP2"):
        bench_dbms.reset_buffer_stats()
        bench_dbms.query("dblp", E6, profile=PLANS[name])
        io[name] = bench_dbms.buffer_stats.accesses
    print("\npage accesses:", io)
    assert io["QP2"] * 100 <= io["QP0"]


def test_milestone_ladder_in_page_io(bench_dbms):
    """m4 ≤ m3 and m4 well below m2 on the selective-label query."""
    query = QUERIES["selective-label"]
    io_by_milestone = {}
    for milestone in ("m2", "m3", "m4"):
        bench_dbms.reset_buffer_stats()
        bench_dbms.query("dblp", query, profile=milestone)
        io_by_milestone[milestone] = bench_dbms.buffer_stats.accesses
    print("\npage accesses:", io_by_milestone)
    assert io_by_milestone["m4"] * 2 <= io_by_milestone["m2"]
    assert io_by_milestone["m4"] <= io_by_milestone["m3"]
