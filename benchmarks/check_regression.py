#!/usr/bin/env python
"""CI perf-regression gate: compare BENCH_*.json against a baseline.

Usage::

    python benchmarks/check_regression.py \
        --baseline benchmarks/baseline.json \
        BENCH_prepared.json BENCH_vectorized.json

The baseline commits conservative floors for the metrics the benchmark
suite emits (all higher-is-better ratios — speedups — so the gate is
robust to the absolute speed of the CI runner).  A metric regresses when
its current value falls more than ``tolerance`` (default 20%) below the
committed floor; a metric missing from the bench output also fails, so a
benchmark silently not running cannot pass the gate.  Two further
integrity checks: the same metric name appearing in two BENCH files is
an error (a later file silently overwriting an earlier one could mask a
regression), and a benched metric with no committed floor is warned
about, so new benchmarks don't ride along ungated forever.
"""

from __future__ import annotations

import argparse
import json
import sys


class DuplicateMetricError(ValueError):
    """The same metric name appeared in more than one BENCH file."""


def load_metrics(paths: list[str]) -> dict[str, float]:
    """Merge the ``metrics`` maps of all BENCH files.

    Raises :class:`DuplicateMetricError` if a name occurs twice — each
    benchmark must own its metric names, otherwise whichever file is
    listed last would silently win and could hide a regression.
    """
    metrics: dict[str, float] = {}
    owner: dict[str, str] = {}
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        for name, value in data.get("metrics", {}).items():
            if name in owner:
                raise DuplicateMetricError(
                    f"metric {name!r} appears in both {owner[name]} "
                    f"and {path}")
            owner[name] = path
            metrics[name] = value
    return metrics


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON with metric floors")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="allowed fractional regression "
                             "(overrides the baseline's own value)")
    parser.add_argument("bench_files", nargs="+",
                        help="BENCH_*.json files produced by the suite")
    args = parser.parse_args(argv)

    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    tolerance = (args.tolerance if args.tolerance is not None
                 else baseline.get("tolerance", 0.20))
    try:
        current = load_metrics(args.bench_files)
    except DuplicateMetricError as error:
        print(f"FAIL {error}", file=sys.stderr)
        return 1

    unbaselined = sorted(set(current) - set(baseline["metrics"]))
    for name in unbaselined:
        print(f"WARN {name}: {current[name]} has no committed floor in "
              f"{args.baseline} (add one to gate it)")

    failures = []
    for name, floor in sorted(baseline["metrics"].items()):
        value = current.get(name)
        threshold = floor * (1.0 - tolerance)
        if value is None:
            failures.append(f"{name}: missing from benchmark output")
            print(f"FAIL {name}: missing (baseline {floor})")
        elif value < threshold:
            failures.append(
                f"{name}: {value} < {threshold:.3f} "
                f"(baseline {floor}, tolerance {tolerance:.0%})")
            print(f"FAIL {name}: {value} < {threshold:.3f} "
                  f"(baseline {floor})")
        else:
            print(f"ok   {name}: {value} >= {threshold:.3f} "
                  f"(baseline {floor})")

    if failures:
        print(f"\n{len(failures)} perf regression(s) vs "
              f"{args.baseline}:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nall {len(baseline['metrics'])} metrics within "
          f"{tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
